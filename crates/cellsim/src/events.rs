//! Deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotonically
//! increasing sequence number breaks ties), so runs are bit-reproducible
//! regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use facs_cac::{CallId, CellId};

use crate::time::SimTime;

/// Identifier of a mobile terminal within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// The events driving the cellular simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A user issues a new-call request at its located cell.
    Arrival {
        /// The requesting user.
        user: UserId,
    },
    /// An admitted call's holding time expires.
    CallEnd {
        /// The finishing call.
        call: CallId,
        /// The user holding it.
        user: UserId,
        /// The cell the call was last served by (stale values are
        /// revalidated against the live ledger on dispatch).
        cell: CellId,
    },
    /// Advance all mobile terminals and process boundary crossings.
    MovementTick,
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Legacy: ties break in *insertion* order, which is only reproducible
/// within a single queue. Kernel code must use [`EngineQueue`], whose
/// order is defined by event contents and therefore survives any
/// partitioning of events across shard queues.
///
/// # Examples
///
/// ```
/// use facs_cellsim::events::{Event, EventQueue, UserId};
/// use facs_cellsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs_f64(2.0), Event::MovementTick);
/// q.schedule(SimTime::from_secs_f64(1.0), Event::Arrival { user: UserId(0) });
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs_f64(1.0));
/// assert!(matches!(e, Event::Arrival { .. }));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The events of the sharded epoch kernel ([`crate::engine`]).
///
/// Unlike [`Event`], which relies on insertion order for tie-breaking
/// (and is therefore only deterministic within a single queue), an
/// `EngineEvent` carries everything needed for a **shard-independent**
/// total order: at equal timestamps, call-ends sort before arrivals
/// (capacity is freed before new decisions are made), then by user id,
/// then by handoff generation. Any partition of the event set across
/// shard queues therefore preserves each cell's event sequence exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// An admitted call's holding time expires. `generation` counts the
    /// call's handoffs so far; an event whose generation no longer
    /// matches the user's current registration is stale (the call moved
    /// to another cell or shard after this event was scheduled) and is
    /// ignored on dispatch.
    CallEnd {
        /// The user holding the finishing call.
        user: UserId,
        /// Handoff generation at scheduling time.
        generation: u32,
    },
    /// A user issues a new-call request at its located cell.
    Arrival {
        /// The requesting user.
        user: UserId,
    },
}

impl EngineEvent {
    /// The shard-independent tie-break key `(rank, user, generation)`.
    #[must_use]
    const fn key(self) -> (u8, u64, u32) {
        match self {
            EngineEvent::CallEnd { user, generation } => (0, user.0, generation),
            EngineEvent::Arrival { user } => (1, user.0, 0),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct EngineEntry {
    time: SimTime,
    event: EngineEvent,
}

impl PartialEq for EngineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.event.key() == other.event.key()
    }
}

impl Eq for EngineEntry {}

impl PartialOrd for EngineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EngineEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inversion: the smallest (time, key) pops first.
        (other.time, other.event.key()).cmp(&(self.time, self.event.key()))
    }
}

/// A per-shard event queue over [`EngineEvent`]s whose pop order depends
/// only on event contents — never on insertion order — so every cell
/// sees the same event sequence regardless of how cells are grouped
/// into shards.
#[derive(Debug, Default)]
pub struct EngineQueue {
    heap: BinaryHeap<EngineEntry>,
}

impl EngineQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: EngineEvent) {
        self.heap.push(EngineEntry { time, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EngineEvent)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), Event::MovementTick);
        q.schedule(t(1.0), Event::Arrival { user: UserId(1) });
        q.schedule(t(2.0), Event::Arrival { user: UserId(2) });
        let order: Vec<f64> =
            std::iter::from_fn(|| q.pop()).map(|(tm, _)| tm.as_secs_f64()).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), Event::Arrival { user: UserId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { user } => user.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), Event::MovementTick);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, t(1.0));
        q.schedule(t(0.5), Event::MovementTick); // in the past relative to t1 — still pops
        q.schedule(t(2.0), Event::MovementTick);
        assert_eq!(q.pop().unwrap().0, t(0.5));
        assert_eq!(q.pop().unwrap().0, t(2.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn engine_queue_order_is_insertion_independent() {
        let events = [
            (t(2.0), EngineEvent::Arrival { user: UserId(3) }),
            (t(1.0), EngineEvent::CallEnd { user: UserId(9), generation: 1 }),
            (t(1.0), EngineEvent::Arrival { user: UserId(1) }),
            (t(1.0), EngineEvent::CallEnd { user: UserId(2), generation: 0 }),
            (t(1.0), EngineEvent::CallEnd { user: UserId(2), generation: 2 }),
        ];
        // Schedule in two different orders; pops must agree.
        let drain = |order: &[usize]| {
            let mut q = EngineQueue::new();
            for &i in order {
                q.schedule(events[i].0, events[i].1);
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        let a = drain(&[0, 1, 2, 3, 4]);
        let b = drain(&[4, 2, 0, 3, 1]);
        assert_eq!(a, b);
        // At t=1: call-ends (user 2 gen 0, user 2 gen 2, user 9) precede
        // the arrival of user 1.
        assert_eq!(a[0].1, EngineEvent::CallEnd { user: UserId(2), generation: 0 });
        assert_eq!(a[1].1, EngineEvent::CallEnd { user: UserId(2), generation: 2 });
        assert_eq!(a[2].1, EngineEvent::CallEnd { user: UserId(9), generation: 1 });
        assert_eq!(a[3].1, EngineEvent::Arrival { user: UserId(1) });
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(4.0), Event::MovementTick);
        q.schedule(t(2.0), Event::MovementTick);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
