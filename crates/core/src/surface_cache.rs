//! Process-wide caching for default-configuration compiled surfaces,
//! shared by FLC1 and FLC2.

use std::sync::OnceLock;

use facs_fuzzy::{CompiledSurface, Engine, FuzzyError, InferenceConfig, DEFAULT_LATTICE_POINTS};

/// Compiles `engine`'s decision surface, or fetches the process-wide
/// cached copy from `cache`.
///
/// Only the default inference configuration at the default lattice
/// resolution is cached — that is the combination every cell of a
/// cluster and every replication of a sweep shares; anything else
/// compiles fresh. Two threads racing the empty cache may both compile,
/// but `OnceLock` guarantees they end up sharing one surface.
pub(crate) fn default_cached_surface(
    cache: &'static OnceLock<CompiledSurface>,
    engine: &Engine,
    config: InferenceConfig,
    points_per_axis: usize,
) -> Result<CompiledSurface, FuzzyError> {
    if config != InferenceConfig::default() || points_per_axis != DEFAULT_LATTICE_POINTS {
        return CompiledSurface::compile(engine, points_per_axis);
    }
    if let Some(cached) = cache.get() {
        return Ok(cached.clone());
    }
    let surface = CompiledSurface::compile(engine, points_per_axis)?;
    Ok(cache.get_or_init(|| surface).clone())
}
