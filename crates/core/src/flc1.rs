//! FLC1 — the mobility-prediction controller (paper §3.1).
//!
//! Inputs: user **S**peed (0–120 km/h, terms Sl/M/Fa), user **A**ngle
//! relative to the BS bearing (−180…180°, terms B1/L1/L2/St/R1/R2/B2) and
//! **D**istance from the BS (0–10 km, terms N/F). Output: the correction
//! value **Cv** in `[0, 1]` over nine terms Cv1…Cv9 (Fig. 5), driven by
//! the 42-rule FRB1 (Table 1).
//!
//! All membership break-points are read off the printed axes of Fig. 5
//! and exposed as named constants so EXPERIMENTS.md can cite them.

use std::sync::{Arc, OnceLock};

use facs_cac::MobilityInfo;
use facs_fuzzy::{
    BackendKind, CompiledSurface, Engine, FuzzyError, InferenceBackend, InferenceConfig,
    MembershipFunction, Rule, Variable,
};

use crate::tables::FRB1;

/// Universe of the speed input, km/h (paper §4).
pub const SPEED_UNIVERSE: (f64, f64) = (0.0, 120.0);
/// Universe of the angle input, degrees.
pub const ANGLE_UNIVERSE: (f64, f64) = (-180.0, 180.0);
/// Universe of the distance input, km.
pub const DISTANCE_UNIVERSE: (f64, f64) = (0.0, 10.0);
/// Universe of the correction-value output.
pub const CV_UNIVERSE: (f64, f64) = (0.0, 1.0);

/// Speed break-points of Fig. 5(a): Slow flat to 15, gone by 30; Middle
/// peaks at 30; Fast flat from 60.
pub const SPEED_BREAKS: [f64; 4] = [0.0, 15.0, 30.0, 60.0];
/// Angle term centers of Fig. 5(b), degrees.
pub const ANGLE_CENTERS: [f64; 7] = [-180.0, -90.0, -45.0, 0.0, 45.0, 90.0, 135.0];

/// Builds the speed variable (Fig. 5a).
fn speed_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("s", SPEED_UNIVERSE.0, SPEED_UNIVERSE.1)
        .term("sl", MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0)?)
        .term("m", MembershipFunction::triangular(30.0, 15.0, 30.0)?)
        .term("fa", MembershipFunction::trapezoidal(60.0, 120.0, 30.0, 0.0)?)
        .build()
}

/// Builds the angle variable (Fig. 5b). B1/B2 are the "back" trapezoids
/// at ±180°; the five triangles sit at −90, −45, 0, 45, 90 with 45°
/// flanks.
fn angle_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("a", ANGLE_UNIVERSE.0, ANGLE_UNIVERSE.1)
        .term("b1", MembershipFunction::trapezoidal(-180.0, -135.0, 0.0, 45.0)?)
        .term("l1", MembershipFunction::triangular(-90.0, 45.0, 45.0)?)
        .term("l2", MembershipFunction::triangular(-45.0, 45.0, 45.0)?)
        .term("st", MembershipFunction::triangular(0.0, 45.0, 45.0)?)
        .term("r1", MembershipFunction::triangular(45.0, 45.0, 45.0)?)
        .term("r2", MembershipFunction::triangular(90.0, 45.0, 45.0)?)
        .term("b2", MembershipFunction::trapezoidal(135.0, 180.0, 45.0, 0.0)?)
        .build()
}

/// Builds the distance variable (Fig. 5c): Near and Far crossing at 5 km.
fn distance_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("d", DISTANCE_UNIVERSE.0, DISTANCE_UNIVERSE.1)
        .term("n", MembershipFunction::triangular(0.0, 0.0, 10.0)?)
        .term("f", MembershipFunction::triangular(10.0, 10.0, 0.0)?)
        .build()
}

/// Builds the Cv output (Fig. 5d): nine terms evenly spaced over `[0, 1]`
/// with edge trapezoids (a Ruspini partition with centers at i/8).
fn cv_variable() -> Result<Variable, FuzzyError> {
    let step = 1.0 / 8.0;
    let mut builder = Variable::builder("cv", CV_UNIVERSE.0, CV_UNIVERSE.1)
        .term("cv1", MembershipFunction::trapezoidal(-1.0, 0.0, 0.0, step)?);
    for i in 2..=8 {
        let center = step * (i as f64 - 1.0);
        builder =
            builder.term(format!("cv{i}"), MembershipFunction::triangular(center, step, step)?);
    }
    builder.term("cv9", MembershipFunction::trapezoidal(1.0, 2.0, step, 0.0)?).build()
}

/// The compiled FLC1.
///
/// # Examples
///
/// ```
/// use facs::Flc1;
/// use facs_cac::MobilityInfo;
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let flc1 = Flc1::new()?;
/// // Fast user heading straight at a near BS: excellent correction.
/// let good = flc1.correction_value(&MobilityInfo::new(70.0, 0.0, 1.0))?;
/// // Fast user heading away from a far BS: hopeless.
/// let bad = flc1.correction_value(&MobilityInfo::new(70.0, 180.0, 9.0))?;
/// assert!(good > 0.85);
/// assert!(bad < 0.15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flc1 {
    // Arc-shared: the engine is immutable after construction
    // (`Engine::evaluate*` is `&self`, scratch lives in a thread-local
    // pool), so stamping one controller per cell of a planet-scale grid
    // clones a pointer, not the rule base.
    engine: Arc<Engine>,
    surface: Option<CompiledSurface>,
}

impl Flc1 {
    /// Builds FLC1 with the paper's default inference configuration
    /// (min/max Mamdani, centroid defuzzification) on the exact backend.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if construction fails (cannot happen for
    /// the built-in tables; the `Result` exists because the engine API is
    /// fallible by design).
    pub fn new() -> Result<Self, FuzzyError> {
        Self::with_config(InferenceConfig::default())
    }

    /// Builds FLC1 with a custom inference configuration (used by the
    /// ablation benches) on the exact backend.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] on invalid configuration (e.g. a
    /// resolution below 2).
    pub fn with_config(config: InferenceConfig) -> Result<Self, FuzzyError> {
        Self::with_backend(config, BackendKind::Exact)
    }

    /// Builds FLC1 with an explicit inference backend: exact Mamdani per
    /// query, or a compiled decision surface interpolated at query time.
    ///
    /// Compiling the surface costs one exact inference per lattice node
    /// (`points_per_axis`³ for the 3 FLC1 inputs), paid here once; the
    /// default-configuration surface is additionally cached per process,
    /// so stamping out one controller per cell or thread recompiles
    /// nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] on invalid configuration or lattice
    /// resolution.
    pub fn with_backend(config: InferenceConfig, backend: BackendKind) -> Result<Self, FuzzyError> {
        let rules: Result<Vec<Rule>, FuzzyError> = FRB1
            .iter()
            .enumerate()
            .map(|(i, &(s, a, d, cv))| {
                Rule::when("s", s)
                    .and("a", a)
                    .and("d", d)
                    .then("cv", cv)
                    .label(format!("frb1-{i}"))
                    .build()
            })
            .collect();
        let engine = Engine::builder()
            .input(speed_variable()?)
            .input(angle_variable()?)
            .input(distance_variable()?)
            .output(cv_variable()?)
            .rules(rules?)
            .config(config)
            .build()?;
        let surface = match backend {
            BackendKind::Exact => None,
            BackendKind::Compiled { points_per_axis } => {
                static DEFAULT_SURFACE: OnceLock<CompiledSurface> = OnceLock::new();
                Some(crate::surface_cache::default_cached_surface(
                    &DEFAULT_SURFACE,
                    &engine,
                    config,
                    points_per_axis,
                )?)
            }
        };
        Ok(Self { engine: Arc::new(engine), surface })
    }

    /// The active backend selector.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        match &self.surface {
            None => BackendKind::Exact,
            Some(s) => BackendKind::Compiled { points_per_axis: s.points_per_axis() },
        }
    }

    /// The compiled decision surface, when the compiled backend is
    /// active.
    #[must_use]
    pub fn surface(&self) -> Option<&CompiledSurface> {
        self.surface.as_ref()
    }

    /// Computes the correction value for a mobility observation.
    ///
    /// Inputs are clamped into the paper universes (speed 0–120, angle
    /// −180…180, distance 0–10).
    ///
    /// # Errors
    ///
    /// [`FuzzyError::NonFiniteInput`] if the observation contains NaN or
    /// infinities.
    pub fn correction_value(&self, mobility: &MobilityInfo) -> Result<f64, FuzzyError> {
        let readings = [mobility.speed_kmh, mobility.angle_deg, mobility.distance_km];
        match &self.surface {
            None => self.engine.evaluate_crisp(&readings),
            Some(surface) => surface.evaluate_crisp(&readings),
        }
    }

    /// The underlying fuzzy engine, exposed for inspection (rule firing
    /// strengths, membership sampling for the Fig. 5 reproduction). With
    /// the compiled backend this is the engine the surface was compiled
    /// from.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc1() -> Flc1 {
        Flc1::new().expect("FLC1 builds")
    }

    fn cv(speed: f64, angle: f64, distance: f64) -> f64 {
        flc1()
            .correction_value(&MobilityInfo::new(speed, angle, distance))
            .expect("inference succeeds")
    }

    #[test]
    fn rule_count_matches_table_1() {
        assert_eq!(flc1().engine().rule_base().len(), 42);
    }

    #[test]
    fn default_backend_is_exact() {
        assert_eq!(flc1().backend(), BackendKind::Exact);
        assert!(flc1().surface().is_none());
    }

    #[test]
    fn compiled_backend_tracks_exact_closely() {
        let exact = flc1();
        let compiled =
            Flc1::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap();
        assert!(compiled.backend().is_compiled());
        assert_eq!(compiled.surface().unwrap().dims(), 3);
        let mut worst = 0.0f64;
        for s in [0.0, 7.0, 30.0, 55.0, 90.0, 120.0] {
            for a in [-180.0, -100.0, -20.0, 0.0, 33.0, 95.0, 180.0] {
                for d in [0.0, 1.5, 4.2, 7.7, 10.0] {
                    let m = MobilityInfo::new(s, a, d);
                    let e = exact.correction_value(&m).unwrap();
                    let c = compiled.correction_value(&m).unwrap();
                    worst = worst.max((e - c).abs());
                }
            }
        }
        // Dense sweeps put the global worst case at ≈ 0.122 (a localized
        // ridge near the Middle speed peak — see EXPERIMENTS.md).
        assert!(worst < 0.13, "compiled FLC1 diverged by {worst}");
    }

    #[test]
    fn default_compiled_surface_is_cached_per_process() {
        let a = Flc1::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap();
        let b = Flc1::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap();
        // Same sample block behind both controllers: one compile total.
        assert!(a.surface().unwrap().shares_samples(b.surface().unwrap()));
        let m = MobilityInfo::new(42.0, 17.0, 3.3);
        assert_eq!(a.correction_value(&m).unwrap(), b.correction_value(&m).unwrap());
    }

    #[test]
    fn anchor_points_fire_single_rules() {
        // At exact term centers only one rule fires; centroid sits at the
        // consequent's center (within discretization and edge-clipping).
        // Sl St N -> Cv9.
        assert!(cv(5.0, 0.0, 0.0) > 0.85, "{}", cv(5.0, 0.0, 0.0));
        // Fa B2 F -> Cv1.
        assert!(cv(90.0, 160.0, 10.0) < 0.15);
        // M St F -> Cv7 (center 0.75).
        let v = cv(30.0, 0.0, 10.0);
        assert!((v - 0.75).abs() < 0.05, "{v}");
        // M L2 N -> Cv8 (center 0.875).
        let v = cv(30.0, -45.0, 0.0);
        assert!((v - 0.875).abs() < 0.05, "{v}");
    }

    #[test]
    fn output_always_in_unit_interval() {
        for s in [0.0, 4.0, 10.0, 30.0, 60.0, 120.0] {
            for a in [-180.0, -90.0, -30.0, 0.0, 45.0, 135.0, 180.0] {
                for d in [0.0, 1.0, 5.0, 10.0] {
                    let v = cv(s, a, d);
                    assert!((0.0..=1.0).contains(&v), "cv({s},{a},{d}) = {v}");
                }
            }
        }
    }

    #[test]
    fn straight_beats_back_for_every_speed() {
        for s in [5.0, 30.0, 90.0] {
            for d in [2.0, 8.0] {
                assert!(
                    cv(s, 0.0, d) > cv(s, 170.0, d),
                    "straight should beat back at speed {s}, distance {d}"
                );
            }
        }
    }

    #[test]
    fn fast_straight_users_get_best_correction_anywhere() {
        // Fa St N and Fa St F are both Cv9: fast straight users are ideal
        // regardless of distance.
        assert!(cv(90.0, 0.0, 0.5) > 0.85);
        assert!(cv(90.0, 0.0, 9.5) > 0.85);
        // Slow straight users degrade with distance (Cv9 near, Cv3 far).
        assert!(cv(5.0, 0.0, 0.5) > 0.8);
        assert!(cv(5.0, 0.0, 9.5) < 0.4);
    }

    #[test]
    fn angle_symmetry_for_middle_and_fast() {
        // Table 1 is left/right symmetric for the M and Fa speed rows;
        // mirrored angles give the same Cv there.
        for s in [30.0, 90.0] {
            for d in [1.0, 9.0] {
                for a in [30.0, 45.0, 90.0, 120.0] {
                    let right = cv(s, a, d);
                    let left = cv(s, -a, d);
                    assert!(
                        (right - left).abs() < 1e-9,
                        "asymmetry at s={s} a={a} d={d}: {right} vs {left}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_slow_row_asymmetry_is_preserved() {
        // The paper's Table 1 maps Sl/L2/F -> Cv3 but its mirror
        // Sl/R1/F -> Cv2 (rules 5 and 9). We transcribe faithfully, so a
        // slow user at -45° over a far BS scores slightly *better* than
        // one at +45°.
        let left = cv(5.0, -45.0, 10.0);
        let right = cv(5.0, 45.0, 10.0);
        assert!(left > right, "paper asymmetry lost: {left} vs {right}");
    }

    #[test]
    fn perpendicular_walkers_get_middling_correction() {
        // Sl R2 N -> Cv4 (center 0.375).
        let v = cv(5.0, 90.0, 0.0);
        assert!((v - 0.375).abs() < 0.06, "{v}");
    }

    #[test]
    fn inputs_are_clamped_to_universes() {
        assert_eq!(cv(500.0, 0.0, 1.0), cv(120.0, 0.0, 1.0));
        assert_eq!(cv(30.0, 0.0, 50.0), cv(30.0, 0.0, 10.0));
    }

    #[test]
    fn non_finite_observation_is_an_error() {
        let err = flc1().correction_value(&MobilityInfo {
            speed_kmh: f64::NAN,
            angle_deg: 0.0,
            distance_km: 1.0,
        });
        assert!(err.is_err());
    }

    #[test]
    fn every_observation_fires_some_rule() {
        // Dense sweep: the rule base covers the whole input space (no
        // NoRuleFired anywhere).
        let flc = flc1();
        for s in (0..=120).step_by(8) {
            for a in (-180..=180).step_by(15) {
                for d in 0..=10 {
                    let m = MobilityInfo::new(f64::from(s), f64::from(a), f64::from(d));
                    assert!(flc.correction_value(&m).is_ok(), "hole at {m:?}");
                }
            }
        }
    }
}
