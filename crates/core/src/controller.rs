//! The FACS admission controller: FLC1 → FLC2 cascade (paper Fig. 4).

use facs_cac::{
    AdmissionController, AdmissionPlan, BandwidthLedger, BandwidthUnits, BoxedController, CallKind,
    CallRequest, CellSnapshot, Decision, MobilityInfo, ServiceProfile,
};
use facs_fuzzy::{BackendKind, FuzzyError, InferenceConfig};

use crate::flc1::Flc1;
use crate::flc2::Flc2;

/// Tunables of the FACS controller.
///
/// Defaults are paper-faithful where the paper specifies them: no handoff
/// bias (the paper explicitly defers call priority to future work), a
/// 10-km distance universe and a 40-BU counter universe. The paper leaves
/// the binary gate over the soft A/R score unspecified; the default
/// threshold of 0.1 ("must lean at least slightly toward accept") is the
/// calibration that reproduces the figure shapes — EXPERIMENTS.md records
/// the sweep behind it, and `ablation_threshold` benches the sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacsConfig {
    /// Admit iff the defuzzified score exceeds this threshold.
    pub threshold: f64,
    /// Score bonus applied to handoff requests (0 = paper-faithful; the
    /// handoff-priority extension of EXPERIMENTS.md sets it positive).
    pub handoff_bias: f64,
    /// The radius the FLC1 distance universe (0–10 km) is scaled from:
    /// observed distances are multiplied by `10 / cell_radius_km`.
    pub cell_radius_km: f64,
    /// The capacity the FLC2 counter universe (0–40 BU) is scaled from.
    pub capacity_bu: u32,
    /// Inference operators shared by both FLCs.
    pub inference: InferenceConfig,
    /// Inference backend shared by both FLCs: exact Mamdani per decision
    /// (default, bit-exact) or compiled decision surfaces (orders of
    /// magnitude faster per decision; EXPERIMENTS.md bounds the
    /// divergence).
    pub backend: BackendKind,
}

impl Default for FacsConfig {
    fn default() -> Self {
        Self {
            threshold: 0.1,
            handoff_bias: 0.0,
            cell_radius_km: 10.0,
            capacity_bu: 40,
            inference: InferenceConfig::default(),
            backend: BackendKind::Exact,
        }
    }
}

impl FacsConfig {
    /// The default configuration on compiled decision surfaces — the
    /// production-serving profile (same rule bases, ~interpolated
    /// scores).
    #[must_use]
    pub fn compiled() -> Self {
        Self { backend: BackendKind::compiled(), ..Self::default() }
    }
}

/// The full evidence of one FACS evaluation, exposed so operators can
/// audit why a call was admitted or denied (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacsEvaluation {
    /// FLC1's correction value in `[0, 1]`.
    pub correction_value: f64,
    /// FLC2's defuzzified score in `[-1, 1]` (after any handoff bias).
    pub score: f64,
    /// The gated decision.
    pub decision: Decision,
}

/// The Fuzzy Admission Control System of Barolli et al. (ICDCSW 2007).
///
/// One instance serves one cell. The controller is pure over its inputs —
/// identical requests against identical cell states yield identical
/// decisions — which the reproduction's determinism rests on.
///
/// # Examples
///
/// ```
/// use facs::FacsController;
/// use facs_cac::{
///     AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
///     MobilityInfo, ServiceClass,
/// };
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let mut facs = FacsController::new()?;
/// let mut cell = BandwidthLedger::new(BandwidthUnits::new(40));
/// // A vehicle heading straight at the BS asking for voice: admitted.
/// let req = CallRequest::new(
///     CallId(1),
///     ServiceClass::Voice,
///     CallKind::New,
///     MobilityInfo::new(60.0, 0.0, 2.0),
/// );
/// let plan = facs.decide(&req, &cell);
/// assert!(plan.admits());
/// cell.allocate(req.id, req.profile).expect("the plan fits");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FacsController {
    flc1: Flc1,
    flc2: Flc2,
    config: FacsConfig,
}

impl FacsController {
    /// Builds FACS with the default (paper-faithful) configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn new() -> Result<Self, FuzzyError> {
        Self::with_config(FacsConfig::default())
    }

    /// Builds FACS with a custom configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile (e.g. an
    /// invalid resolution in `config.inference`).
    pub fn with_config(config: FacsConfig) -> Result<Self, FuzzyError> {
        Ok(Self {
            flc1: Flc1::with_backend(config.inference, config.backend)?,
            flc2: Flc2::with_backend(config.inference, config.backend)?,
            config,
        })
    }

    /// A cloneable per-cell controller factory sharing one prototype:
    /// rule compilation (and, on the compiled backend, surface
    /// precomputation) happens **once** here, and every invocation hands
    /// out a clone — compiled surfaces clone by reference, so a sharded
    /// simulation or a 100-cell cluster pays a single compile. The
    /// returned closure satisfies `facs_cac::ControllerFactory`, which
    /// is what [`facs_cellsim`-style] engines consume to construct one
    /// controller per cell per shard.
    ///
    /// [`facs_cellsim`-style]: facs_cac::ControllerFactory
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the prototype fails to build.
    pub fn factory(
        config: FacsConfig,
    ) -> Result<impl Fn() -> BoxedController + Send + Sync + Clone, FuzzyError> {
        let prototype = Self::with_config(config)?;
        Ok(move || Box::new(prototype.clone()) as BoxedController)
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &FacsConfig {
        &self.config
    }

    /// FLC1, for membership dumps and rule inspection.
    #[must_use]
    pub fn flc1(&self) -> &Flc1 {
        &self.flc1
    }

    /// FLC2, for membership dumps and rule inspection.
    #[must_use]
    pub fn flc2(&self) -> &Flc2 {
        &self.flc2
    }

    /// Runs the full cascade and returns every intermediate value.
    ///
    /// A corrupted (non-finite) mobility observation yields a firm
    /// rejection with `correction_value = 0` rather than an error: in a
    /// live system a broken GPS fix must not take the admission path down.
    #[must_use]
    pub fn evaluate(&self, request: &CallRequest, cell: &CellSnapshot) -> FacsEvaluation {
        evaluate_cascade(&self.flc1, &self.flc2, &self.config, request, cell)
    }
}

/// The FLC1 → FLC2 cascade over explicit engines — shared by
/// [`FacsController`] and the predictive/tuned variants, which swap in a
/// re-weighted FLC2 or a synthesized (forecast) cell snapshot.
pub(crate) fn evaluate_cascade(
    flc1: &Flc1,
    flc2: &Flc2,
    config: &FacsConfig,
    request: &CallRequest,
    cell: &CellSnapshot,
) -> FacsEvaluation {
    if !request.mobility.is_finite() {
        return FacsEvaluation {
            correction_value: 0.0,
            score: -1.0,
            decision: Decision::reject(-1.0),
        };
    }
    let scaled = scale_mobility(config, &request.mobility);
    let correction_value = match flc1.correction_value(&scaled) {
        Ok(cv) => cv,
        Err(_) => {
            return FacsEvaluation {
                correction_value: 0.0,
                score: -1.0,
                decision: Decision::reject(-1.0),
            }
        }
    };
    let counter = scale_counter(config, cell);
    let request_bu = request.class.request_level();
    let mut score = match flc2.decision_score(correction_value, request_bu, counter) {
        Ok(s) => s,
        Err(_) => {
            return FacsEvaluation {
                correction_value,
                score: -1.0,
                decision: Decision::reject(-1.0),
            }
        }
    };
    if request.kind == CallKind::Handoff {
        score = (score + config.handoff_bias).clamp(-1.0, 1.0);
    }
    // Snap to a 1e-12 grid: the sampled centroid carries ~1e-16 noise
    // which must not flip a `score > threshold` gate at exactly the
    // neutral point (a pure-NRNA surface defuzzifies to 0 ± ulp).
    score = (score * 1e12).round() / 1e12;
    FacsEvaluation {
        correction_value,
        score,
        decision: Decision::from_score(score, config.threshold),
    }
}

/// Scales an observed distance into FLC1's 0–10 km universe according
/// to the configured cell radius.
fn scale_mobility(config: &FacsConfig, mobility: &MobilityInfo) -> MobilityInfo {
    let scale = 10.0 / config.cell_radius_km.max(f64::MIN_POSITIVE);
    MobilityInfo {
        speed_kmh: mobility.speed_kmh,
        angle_deg: mobility.angle_deg,
        distance_km: mobility.distance_km * scale,
    }
}

/// Scales occupancy into FLC2's 0–40 BU counter universe according to
/// the configured capacity.
pub(crate) fn scale_counter(config: &FacsConfig, cell: &CellSnapshot) -> f64 {
    let capacity = f64::from(config.capacity_bu.max(1));
    f64::from(cell.occupied.get()) * 40.0 / capacity
}

impl AdmissionController for FacsController {
    fn name(&self) -> &str {
        "FACS"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        // Saturation short-circuit: plain FACS admits only at nominal
        // bandwidth, so when the cell cannot fit that cost the request is
        // denied whatever the cascade says (an Admit plan would fail
        // allocation). Skipping the evaluation changes no outcome, and on
        // saturated cells it skips the dominant per-arrival cost.
        if self.fast_reject(&request.profile, cell) {
            return AdmissionPlan::Reject(Decision::reject(-1.0));
        }
        AdmissionPlan::gate(self.evaluate(request, &cell.snapshot()).decision)
    }

    fn fast_reject(&self, profile: &ServiceProfile, cell: &BandwidthLedger) -> bool {
        // Plain FACS never degrades or squeezes, so a profile whose
        // nominal cost does not fit is denied for any mobility and kind.
        !cell.can_fit(profile.rb_cost_nominal)
    }
}

/// FACS with elastic-bandwidth degradation (cf. Chowdhury et al.,
/// arXiv:1412.3630): the fuzzy cascade still gates every request, but a
/// fuzzy-accepted call that does not fit at nominal bandwidth is not
/// immediately lost.
///
/// * Any accepted call may enter **self-degraded** — allocated whatever
///   free bandwidth remains, down to its own QoS floor — squeezing
///   nobody else.
/// * Only **handoffs** may additionally trigger degradation of existing
///   elastic calls toward their floors to make room (users tolerate a
///   quality dip far better than a dropped call); new calls never
///   squeeze anyone.
/// * The cascade is consulted at the **effective occupancy** — live
///   occupancy net of the slack degradation could reclaim. Occupancy is
///   an FLC2 input, so an elastic cell full of nominal-rate calls is
///   genuinely less congested than the raw counter suggests; feeding
///   the raw value would make the gate reject at exactly the loads
///   where degradation matters. With rigid profiles nothing is
///   reclaimable and the effective occupancy *is* the live occupancy.
///
/// Degraded calls are re-upgraded toward nominal by the ledger as
/// bandwidth frees up. With rigid paper profiles (floor == nominal)
/// every elastic branch above is unreachable and the set of effectively
/// admitted calls (fuzzy-accepted *and* fitting) is identical to
/// [`FacsController`]'s — the degradation variant merely folds the
/// does-it-fit check into the plan instead of leaving it to the
/// ledger's allocation failure.
#[derive(Debug, Clone)]
pub struct FacsDegradeController {
    inner: FacsController,
}

impl FacsDegradeController {
    /// Builds the degradation-aware controller with the default
    /// (paper-faithful) fuzzy configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn new() -> Result<Self, FuzzyError> {
        Self::with_config(FacsConfig::default())
    }

    /// Builds the degradation-aware controller over a custom FACS
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn with_config(config: FacsConfig) -> Result<Self, FuzzyError> {
        Ok(Self { inner: FacsController::with_config(config)? })
    }

    /// A cloneable per-cell factory sharing one compiled prototype — the
    /// degradation-aware sibling of [`FacsController::factory`].
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the prototype fails to build.
    pub fn factory(
        config: FacsConfig,
    ) -> Result<impl Fn() -> BoxedController + Send + Sync + Clone, FuzzyError> {
        let prototype = Self::with_config(config)?;
        Ok(move || Box::new(prototype.clone()) as BoxedController)
    }

    /// The wrapped plain FACS controller.
    #[must_use]
    pub fn inner(&self) -> &FacsController {
        &self.inner
    }
}

impl AdmissionController for FacsDegradeController {
    fn name(&self) -> &str {
        "FACS-degrade"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        let snapshot = cell.snapshot();
        // Gate at the effective occupancy: live occupancy minus the
        // slack a degradation plan could reclaim. Elastic headroom is
        // real capacity, and hiding it from FLC2's occupancy input
        // would make the gate reject at exactly the loads where
        // degradation matters. Rigid profiles have zero slack, so this
        // is the live snapshot and the controller degenerates to FACS.
        let effective = CellSnapshot {
            occupied: BandwidthUnits::new(
                snapshot.occupied.get().saturating_sub(cell.reclaimable().get()),
            ),
            ..snapshot
        };
        let eval = self.inner.evaluate(request, &effective);
        let profile = request.profile;
        if !eval.decision.admits() {
            return AdmissionPlan::Reject(eval.decision);
        }
        let free = cell.free();
        if profile.rb_cost_nominal <= free {
            return AdmissionPlan::Admit(eval.decision);
        }
        // Enter self-degraded on the remaining free bandwidth (>= own
        // floor). Allowed for new calls too: nobody else is squeezed.
        if profile.rb_cost_min <= free {
            return AdmissionPlan::AdmitDegraded {
                decision: eval.decision,
                squeezes: Vec::new(),
                grant: free,
            };
        }
        // Squeezing existing calls toward their floors is reserved for
        // handoffs, which would otherwise be dropped mid-call.
        if request.kind == CallKind::Handoff {
            if let Some(squeezes) = cell.degradation_squeezes(profile.rb_cost_min) {
                return AdmissionPlan::AdmitDegraded {
                    decision: eval.decision,
                    squeezes,
                    grant: profile.rb_cost_min,
                };
            }
        }
        AdmissionPlan::Reject(Decision::reject(eval.score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::{BandwidthUnits, CallId, ServiceClass, ServiceProfile};

    fn facs() -> FacsController {
        FacsController::new().expect("FACS builds")
    }

    fn cell(occupied: u32) -> CellSnapshot {
        CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(occupied))
    }

    /// A 40-BU ledger pre-loaded to `occupied` via one rigid filler call.
    fn ledger(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    fn req(class: ServiceClass, kind: CallKind, mobility: MobilityInfo) -> CallRequest {
        CallRequest::new(CallId(1), class, kind, mobility)
    }

    #[test]
    fn admits_good_users_into_light_cell() {
        let mut facs = facs();
        let r = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0));
        assert!(facs.decide(&r, &ledger(0)).admits());
        assert!(facs.decide(&r, &ledger(5)).admits());
    }

    #[test]
    fn rejects_video_into_full_cell_even_with_perfect_mobility() {
        let mut facs = facs();
        let r = req(ServiceClass::Video, CallKind::New, MobilityInfo::new(60.0, 0.0, 1.0));
        assert!(!facs.decide(&r, &ledger(39)).admits());
    }

    #[test]
    fn good_mobility_unlocks_moderate_load() {
        let mut facs = facs();
        let good = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0));
        let bad = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(5.0, 170.0, 9.0));
        // Moderate occupancy: good mobility admitted, bad denied.
        assert!(facs.decide(&good, &ledger(20)).admits());
        assert!(!facs.decide(&bad, &ledger(20)).admits());
    }

    #[test]
    fn evaluation_exposes_cascade() {
        let facs = facs();
        let r = req(ServiceClass::Text, CallKind::New, MobilityInfo::new(90.0, 0.0, 1.0));
        let eval = facs.evaluate(&r, &cell(3));
        assert!(eval.correction_value > 0.85, "cv {}", eval.correction_value);
        assert!(eval.score > 0.0);
        assert!(eval.decision.admits());
    }

    #[test]
    fn corrupted_gps_is_firmly_rejected() {
        let facs = facs();
        let r = req(
            ServiceClass::Text,
            CallKind::New,
            MobilityInfo { speed_kmh: f64::NAN, angle_deg: 0.0, distance_km: 1.0 },
        );
        let eval = facs.evaluate(&r, &cell(0));
        assert!(!eval.decision.admits());
        assert_eq!(eval.score, -1.0);
    }

    #[test]
    fn threshold_is_configurable() {
        let strict =
            FacsController::with_config(FacsConfig { threshold: 0.6, ..FacsConfig::default() })
                .unwrap();
        let lax =
            FacsController::with_config(FacsConfig { threshold: -0.6, ..FacsConfig::default() })
                .unwrap();
        let r = req(ServiceClass::Video, CallKind::New, MobilityInfo::new(30.0, 40.0, 4.0));
        let mid_cell = cell(14);
        let eval_strict = strict.evaluate(&r, &mid_cell);
        let eval_lax = lax.evaluate(&r, &mid_cell);
        assert_eq!(eval_strict.score, eval_lax.score, "threshold must not change the score");
        assert!(!eval_strict.decision.admits());
        assert!(eval_lax.decision.admits());
    }

    #[test]
    fn handoff_bias_prioritizes_handoffs() {
        let biased =
            FacsController::with_config(FacsConfig { handoff_bias: 0.4, ..FacsConfig::default() })
                .unwrap();
        let mobility = MobilityInfo::new(5.0, 100.0, 6.0);
        let new_call = req(ServiceClass::Voice, CallKind::New, mobility);
        let handoff = req(ServiceClass::Voice, CallKind::Handoff, mobility);
        let c = cell(18);
        let s_new = biased.evaluate(&new_call, &c).score;
        let s_ho = biased.evaluate(&handoff, &c).score;
        assert!(s_ho > s_new, "handoff {s_ho} should score above new {s_new}");
    }

    #[test]
    fn paper_default_has_no_handoff_priority() {
        let facs = facs();
        let mobility = MobilityInfo::new(30.0, 20.0, 3.0);
        let new_call = req(ServiceClass::Voice, CallKind::New, mobility);
        let handoff = req(ServiceClass::Voice, CallKind::Handoff, mobility);
        let c = cell(18);
        assert_eq!(facs.evaluate(&new_call, &c).score, facs.evaluate(&handoff, &c).score);
    }

    #[test]
    fn distance_scaling_for_small_cells() {
        // In a 2-km cell, 1.8 km from the BS is "far" (9/10 scaled).
        let small = FacsController::with_config(FacsConfig {
            cell_radius_km: 2.0,
            ..FacsConfig::default()
        })
        .unwrap();
        let default = facs();
        let r = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(5.0, 0.0, 1.8));
        let eval_small = small.evaluate(&r, &cell(0));
        let eval_default = default.evaluate(&r, &cell(0));
        // Slow straight user: near => mostly cv9 (high), far => cv3 (low).
        // (The default cv stays below ~0.7 because the cv9 edge trapezoid
        // holds little in-universe area; what matters is the gap.)
        assert!(eval_default.correction_value > 0.6, "{}", eval_default.correction_value);
        assert!(eval_small.correction_value < 0.45, "{}", eval_small.correction_value);
        assert!(eval_default.correction_value > eval_small.correction_value + 0.2);
    }

    #[test]
    fn capacity_scaling_for_bigger_cells() {
        // An 80-BU cell half full should look like Cs = 20 (Middle).
        let big =
            FacsController::with_config(FacsConfig { capacity_bu: 80, ..FacsConfig::default() })
                .unwrap();
        let big_cell = CellSnapshot::loaded(BandwidthUnits::new(80), BandwidthUnits::new(40));
        let r = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0));
        let eval = big.evaluate(&r, &big_cell);
        // Good cv at middle occupancy -> accept (G ? M -> A).
        assert!(eval.decision.admits());
        // Same controller, nearly full big cell -> reject.
        let full_cell = CellSnapshot::loaded(BandwidthUnits::new(80), BandwidthUnits::new(78));
        let r_vid = req(ServiceClass::Video, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0));
        assert!(!big.evaluate(&r_vid, &full_cell).decision.admits());
    }

    #[test]
    fn decide_matches_evaluate() {
        let mut facs = facs();
        let r = req(ServiceClass::Text, CallKind::New, MobilityInfo::new(45.0, 30.0, 5.0));
        let l = ledger(12);
        let eval = facs.evaluate(&r, &l.snapshot());
        let plan = facs.decide(&r, &l);
        assert_eq!(eval.decision.admits(), plan.admits());
        assert_eq!(eval.decision.score(), plan.decision().score());
        assert!(!plan.is_degraded(), "plain FACS never degrades");
    }

    #[test]
    fn controller_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FacsController>();
        assert_send::<FacsDegradeController>();
    }

    /// A fuzzy gate that always accepts, isolating the elastic logic.
    fn lax_degrade() -> FacsDegradeController {
        FacsDegradeController::with_config(FacsConfig { threshold: -2.0, ..FacsConfig::default() })
            .unwrap()
    }

    /// 40 BU fully occupied by four elastic video calls at nominal
    /// (each 10 BU nominal, 5 BU floor — 20 BU reclaimable).
    fn elastic_full_ledger() -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        for i in 0..4 {
            l.allocate(
                CallId(100 + i),
                ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 0.5, 180.0),
            )
            .unwrap();
        }
        l
    }

    fn elastic_voice() -> ServiceProfile {
        // Nominal 5 BU, floor ceil(5 * 0.4) = 2 BU.
        ServiceProfile::elastic(ServiceClass::Voice, BandwidthUnits::new(5), 0.4, 120.0)
    }

    #[test]
    fn handoff_squeezes_elastic_calls_into_a_full_cell() {
        let mut deg = lax_degrade();
        let mut l = elastic_full_ledger();
        let r = req(ServiceClass::Voice, CallKind::Handoff, MobilityInfo::new(60.0, 0.0, 2.0))
            .with_profile(elastic_voice());
        let plan = deg.decide(&r, &l);
        match plan {
            AdmissionPlan::AdmitDegraded { ref squeezes, grant, .. } => {
                assert!(!squeezes.is_empty(), "a full cell needs squeezes");
                assert_eq!(grant, r.profile.rb_cost_min);
                // The plan must actually be applicable.
                l.admit_with_plan(r.id, r.profile, grant, squeezes).unwrap();
                assert_eq!(l.allocated_to(r.id).unwrap().get(), 2);
            }
            other => panic!("expected AdmitDegraded, got {other:?}"),
        }
    }

    #[test]
    fn new_calls_never_squeeze_existing_calls() {
        let mut deg = lax_degrade();
        let l = elastic_full_ledger();
        let r = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0))
            .with_profile(elastic_voice());
        let plan = deg.decide(&r, &l);
        assert!(!plan.admits(), "new calls may not degrade others: {plan:?}");
    }

    #[test]
    fn entering_call_self_degrades_onto_free_bandwidth() {
        let mut deg = lax_degrade();
        // 37 occupied: 3 BU free, below voice nominal (5) but >= floor (2).
        let l = ledger(37);
        let r = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0))
            .with_profile(elastic_voice());
        match deg.decide(&r, &l) {
            AdmissionPlan::AdmitDegraded { squeezes, grant, .. } => {
                assert!(squeezes.is_empty(), "self-degradation squeezes nobody");
                assert_eq!(grant.get(), 3);
            }
            other => panic!("expected AdmitDegraded, got {other:?}"),
        }
    }

    #[test]
    fn congested_handoff_is_squeezed_in_rather_than_dropped() {
        // Default threshold: the fuzzy gate genuinely rejects at full
        // occupancy but accepts at the post-squeeze occupancy, so the
        // relief branch converts a drop into a floor-grant admission.
        let mut deg = FacsDegradeController::new().unwrap();
        let mut plain = facs();
        let l = elastic_full_ledger();
        let r = req(ServiceClass::Voice, CallKind::Handoff, MobilityInfo::new(60.0, 0.0, 2.0))
            .with_profile(elastic_voice());
        assert!(!plain.decide(&r, &l).admits(), "plain FACS drops this handoff");
        match deg.decide(&r, &l) {
            AdmissionPlan::AdmitDegraded { ref squeezes, grant, decision } => {
                assert!(!squeezes.is_empty(), "a full cell needs squeezes");
                assert_eq!(grant, r.profile.rb_cost_min);
                assert!(decision.admits(), "the plan carries the accepting post-squeeze verdict");
            }
            other => panic!("expected AdmitDegraded, got {other:?}"),
        }
        // The same congested cell still rejects a *new* call: squeezing
        // existing users is reserved for calls that would be dropped.
        let n = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0))
            .with_profile(elastic_voice());
        assert!(!deg.decide(&n, &l).admits(), "new calls may not trigger relief squeezes");
    }

    #[test]
    fn rigid_profiles_degenerate_to_plain_facs() {
        let mut plain = facs();
        let mut deg = FacsDegradeController::new().unwrap();
        for occupied in 0..=40 {
            let l = ledger(occupied);
            for class in ServiceClass::ALL {
                for kind in [CallKind::New, CallKind::Handoff] {
                    let r = req(class, kind, MobilityInfo::new(45.0, 20.0, 4.0));
                    let a = plain.decide(&r, &l);
                    let b = deg.decide(&r, &l);
                    // Effective admission (fuzzy-accepted AND fitting)
                    // must match; the paper profile leaves no slack so
                    // nothing may ever be degraded.
                    assert_eq!(
                        a.admits() && l.can_fit(r.demand()),
                        b.admits(),
                        "{class} {kind:?} at occupancy {occupied}"
                    );
                    assert!(!b.is_degraded());
                }
            }
        }
    }

    #[test]
    fn compiled_backend_agrees_on_clear_cut_decisions() {
        let compiled = FacsController::with_config(FacsConfig::compiled()).unwrap();
        assert!(compiled.config().backend.is_compiled());
        let good = req(ServiceClass::Voice, CallKind::New, MobilityInfo::new(60.0, 0.0, 2.0));
        let vid = req(ServiceClass::Video, CallKind::New, MobilityInfo::new(60.0, 0.0, 1.0));
        assert!(compiled.evaluate(&good, &cell(0)).decision.admits());
        assert!(!compiled.evaluate(&vid, &cell(39)).decision.admits());
    }

    #[test]
    fn compiled_backend_handles_corrupted_gps_identically() {
        let compiled = FacsController::with_config(FacsConfig::compiled()).unwrap();
        let r = req(
            ServiceClass::Text,
            CallKind::New,
            MobilityInfo { speed_kmh: f64::INFINITY, angle_deg: 0.0, distance_km: 1.0 },
        );
        let eval = compiled.evaluate(&r, &cell(0));
        assert!(!eval.decision.admits());
        assert_eq!(eval.score, -1.0);
    }

    #[test]
    fn cloned_compiled_controllers_share_surfaces() {
        let a = FacsController::with_config(FacsConfig::compiled()).unwrap();
        let b = a.clone();
        assert!(a.flc1().surface().unwrap().shares_samples(b.flc1().surface().unwrap()));
        assert!(a.flc2().surface().unwrap().shares_samples(b.flc2().surface().unwrap()));
    }
}
