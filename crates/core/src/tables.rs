//! The paper's rule bases, transcribed verbatim.
//!
//! * [`FRB1`] — Table 1: 42 rules mapping (Speed, Angle, Distance) to the
//!   correction value Cv.
//! * [`FRB2`] — Table 2: 27 rules mapping (Cv, Request, Counter state) to
//!   the accept/reject decision A/R.
//!
//! Keeping the tables as plain data (rather than inline rule-builder
//! calls) makes them auditable against the paper row by row and lets the
//! experiment harness dump them for EXPERIMENTS.md.

/// One row of Table 1: `(speed, angle, distance, cv)` term names.
pub type Frb1Row = (&'static str, &'static str, &'static str, &'static str);

/// Table 1 of the paper — FRB1, 42 rules in the paper's row order
/// (rule 0 at index 0).
pub const FRB1: [Frb1Row; 42] = [
    // Slow
    ("sl", "b1", "n", "cv3"),
    ("sl", "b1", "f", "cv1"),
    ("sl", "l1", "n", "cv4"),
    ("sl", "l1", "f", "cv2"),
    ("sl", "l2", "n", "cv5"),
    ("sl", "l2", "f", "cv3"),
    ("sl", "st", "n", "cv9"),
    ("sl", "st", "f", "cv3"),
    ("sl", "r1", "n", "cv5"),
    ("sl", "r1", "f", "cv2"),
    ("sl", "r2", "n", "cv4"),
    ("sl", "r2", "f", "cv2"),
    ("sl", "b2", "n", "cv3"),
    ("sl", "b2", "f", "cv1"),
    // Middle
    ("m", "b1", "n", "cv2"),
    ("m", "b1", "f", "cv1"),
    ("m", "l1", "n", "cv4"),
    ("m", "l1", "f", "cv1"),
    ("m", "l2", "n", "cv8"),
    ("m", "l2", "f", "cv5"),
    ("m", "st", "n", "cv9"),
    ("m", "st", "f", "cv7"),
    ("m", "r1", "n", "cv8"),
    ("m", "r1", "f", "cv5"),
    ("m", "r2", "n", "cv4"),
    ("m", "r2", "f", "cv1"),
    ("m", "b2", "n", "cv2"),
    ("m", "b2", "f", "cv1"),
    // Fast
    ("fa", "b1", "n", "cv1"),
    ("fa", "b1", "f", "cv1"),
    ("fa", "l1", "n", "cv1"),
    ("fa", "l1", "f", "cv2"),
    ("fa", "l2", "n", "cv6"),
    ("fa", "l2", "f", "cv8"),
    ("fa", "st", "n", "cv9"),
    ("fa", "st", "f", "cv9"),
    ("fa", "r1", "n", "cv6"),
    ("fa", "r1", "f", "cv8"),
    ("fa", "r2", "n", "cv1"),
    ("fa", "r2", "f", "cv2"),
    ("fa", "b2", "n", "cv1"),
    ("fa", "b2", "f", "cv1"),
];

/// One row of Table 2: `(cv, request, counter_state, decision)` term
/// names.
pub type Frb2Row = (&'static str, &'static str, &'static str, &'static str);

/// Table 2 of the paper — FRB2, 27 rules in the paper's row order.
pub const FRB2: [Frb2Row; 27] = [
    ("b", "t", "s", "a"),
    ("b", "t", "m", "nrna"),
    ("b", "t", "f", "nrna"),
    ("b", "vo", "s", "a"),
    ("b", "vo", "m", "nrna"),
    ("b", "vo", "f", "wr"),
    ("b", "vi", "s", "wa"),
    ("b", "vi", "m", "nrna"),
    ("b", "vi", "f", "wr"),
    ("n", "t", "s", "a"),
    ("n", "t", "m", "nrna"),
    ("n", "t", "f", "nrna"),
    ("n", "vo", "s", "a"),
    ("n", "vo", "m", "nrna"),
    ("n", "vo", "f", "nrna"),
    ("n", "vi", "s", "wa"),
    ("n", "vi", "m", "nrna"),
    ("n", "vi", "f", "nrna"),
    ("g", "t", "s", "a"),
    ("g", "t", "m", "a"),
    ("g", "t", "f", "nrna"),
    ("g", "vo", "s", "a"),
    ("g", "vo", "m", "a"),
    ("g", "vo", "f", "wr"),
    ("g", "vi", "s", "a"),
    ("g", "vi", "m", "a"),
    ("g", "vi", "f", "r"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn frb1_has_42_rules_covering_the_full_grid() {
        assert_eq!(FRB1.len(), 42);
        // |T(S)| * |T(A)| * |T(D)| = 3 * 7 * 2 = 42 distinct antecedents.
        let antecedents: HashSet<(&str, &str, &str)> =
            FRB1.iter().map(|&(s, a, d, _)| (s, a, d)).collect();
        assert_eq!(antecedents.len(), 42, "duplicate antecedent in FRB1");
    }

    #[test]
    fn frb2_has_27_rules_covering_the_full_grid() {
        assert_eq!(FRB2.len(), 27);
        let antecedents: HashSet<(&str, &str, &str)> =
            FRB2.iter().map(|&(c, r, s, _)| (c, r, s)).collect();
        assert_eq!(antecedents.len(), 27, "duplicate antecedent in FRB2");
    }

    #[test]
    fn frb1_spot_checks_against_paper() {
        // Rule 6: Sl St N -> Cv9.
        assert_eq!(FRB1[6], ("sl", "st", "n", "cv9"));
        // Rule 21: M St F -> Cv7.
        assert_eq!(FRB1[21], ("m", "st", "f", "cv7"));
        // Rule 35: Fa St F -> Cv9.
        assert_eq!(FRB1[35], ("fa", "st", "f", "cv9"));
        // Rule 41: Fa B2 F -> Cv1.
        assert_eq!(FRB1[41], ("fa", "b2", "f", "cv1"));
    }

    #[test]
    fn frb2_spot_checks_against_paper() {
        // Rule 0: B T S -> A.
        assert_eq!(FRB2[0], ("b", "t", "s", "a"));
        // Rule 8: B Vi F -> WR.
        assert_eq!(FRB2[8], ("b", "vi", "f", "wr"));
        // Rule 20: G T F -> NRNA.
        assert_eq!(FRB2[20], ("g", "t", "f", "nrna"));
        // Rule 26: G Vi F -> R.
        assert_eq!(FRB2[26], ("g", "vi", "f", "r"));
    }

    #[test]
    fn frb1_straight_near_is_always_best() {
        // For every speed, the St/N cell maps to Cv9 (the strongest
        // correction) — users heading straight at a nearby BS are the
        // safest admissions.
        for speed in ["sl", "m", "fa"] {
            let row =
                FRB1.iter().find(|&&(s, a, d, _)| s == speed && a == "st" && d == "n").unwrap();
            assert_eq!(row.3, "cv9", "speed {speed}");
        }
    }

    #[test]
    fn frb2_good_cv_unlocks_middle_occupancy() {
        // The core of the paper's admission logic: at middle occupancy,
        // only good-correction users are accepted.
        for request in ["t", "vo", "vi"] {
            for (cv, expect) in [("b", "nrna"), ("n", "nrna"), ("g", "a")] {
                let row =
                    FRB2.iter().find(|&&(c, r, s, _)| c == cv && r == request && s == "m").unwrap();
                assert_eq!(row.3, expect, "cv={cv} request={request}");
            }
        }
    }
}
