//! # facs — the Fuzzy Admission Control System (Barolli et al., ICDCSW 2007)
//!
//! A faithful reimplementation of the paper's proposed system: two
//! cascaded Mamdani fuzzy logic controllers deciding call admission for
//! wireless cellular networks.
//!
//! * [`Flc1`] predicts how "safe" a user is to serve from GPS mobility
//!   observations — speed, heading angle relative to the base station,
//!   and distance — producing a correction value `Cv` in `[0, 1]`
//!   (42-rule FRB1, paper Table 1, membership functions of Fig. 5).
//! * [`Flc2`] combines `Cv` with the requested bandwidth and the cell's
//!   occupancy counter into a soft accept/reject score in `[-1, 1]`
//!   (27-rule FRB2, paper Table 2, membership functions of Fig. 6).
//! * [`FacsController`] cascades the two (paper Fig. 4) and implements
//!   the [`facs_cac::AdmissionController`] trait, so the simulator and
//!   the distributed runtime can drive it interchangeably with the
//!   baselines. [`FacsDegradeController`] wraps it with elastic-bandwidth
//!   degradation: handoffs that do not fit at nominal bandwidth may
//!   squeeze existing elastic calls toward their QoS floors.
//!
//! ## Quickstart
//!
//! ```
//! use facs::FacsController;
//! use facs_cac::{
//!     AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
//!     MobilityInfo, ServiceClass,
//! };
//!
//! # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
//! let mut controller = FacsController::new()?;
//! let mut cell = BandwidthLedger::new(BandwidthUnits::new(40));
//! let request = CallRequest::new(
//!     CallId(7),
//!     ServiceClass::Video,
//!     CallKind::New,
//!     MobilityInfo::new(45.0, 15.0, 3.0), // 45 km/h, 15° off-bearing, 3 km out
//! );
//! let plan = controller.decide(&request, &cell);
//! assert!(plan.admits());
//! cell.allocate(request.id, request.profile).expect("10 BU fit in an empty cell");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod flc1;
pub mod flc2;
pub mod predictive;
mod surface_cache;
pub mod tables;

pub use controller::{FacsConfig, FacsController, FacsDegradeController, FacsEvaluation};
pub use flc1::Flc1;
pub use flc2::Flc2;
pub use predictive::{PredictiveFacsController, TunedFacsController};
pub use tables::{FRB1, FRB2};

/// Commonly used items, for glob import in applications and examples.
pub mod prelude {
    pub use crate::controller::{
        FacsConfig, FacsController, FacsDegradeController, FacsEvaluation,
    };
    pub use crate::flc1::Flc1;
    pub use crate::flc2::Flc2;
    pub use crate::predictive::{PredictiveFacsController, TunedFacsController};
}
