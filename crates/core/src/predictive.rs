//! Predictive and learning FACS variants.
//!
//! Two controllers extend the reactive cascade of
//! [`FacsController`]:
//!
//! * [`PredictiveFacsController`] feeds **forecast** occupancy into FLC2
//!   in place of the instantaneous counter for new calls, at a horizon
//!   equal to the cell's mean handoff interarrival (estimated online).
//!   An RNN-based CAC (arXiv:1004.3563) and the intelligent decision
//!   mechanism of arXiv:1004.4444 motivate the shape: condition
//!   admission on where the network is *heading*, not where it is.
//! * [`TunedFacsController`] keeps the cascade reactive but learns: an
//!   online tuner nudges the FRB2 rule consequent weights from observed
//!   drop/block outcomes (bounded steps, clamped weights, exportable as
//!   JSON), hill-climbing the weighted QoS cost
//!   `10 · P(drop) + P(block)`.
//!
//! Both controllers are strictly **cell-local**: every input to their
//! mutable state arrives through `decide`/`observe` on their own cell,
//! so each cell's update stream — and therefore the whole simulation —
//! stays bit-identical across shard counts.

use facs_cac::{
    AdmissionController, AdmissionPlan, BandwidthLedger, BandwidthUnits, BoxedController, CallKind,
    CallRequest, CellSnapshot, Decision, EwmaHoltForecaster, InterarrivalEstimator, LoadForecaster,
    RecurrentForecaster, ServiceClass,
};
use facs_fuzzy::FuzzyError;

use crate::controller::{evaluate_cascade, FacsConfig, FacsController, FacsEvaluation};
use crate::flc1::Flc1;
use crate::flc2::Flc2;
use crate::tables::FRB2;

fn class_index(class: ServiceClass) -> usize {
    match class {
        ServiceClass::Text => 0,
        ServiceClass::Voice => 1,
        ServiceClass::Video => 2,
    }
}

/// Horizon used before enough handoffs have been seen to estimate the
/// cell's mean handoff interarrival — one default movement tick.
const DEFAULT_HORIZON_S: f64 = 5.0;
/// Handoffs required before the measured interarrival replaces the
/// default horizon.
const HORIZON_MIN_EVENTS: u64 = 8;
/// Epoch samples each per-class forecaster needs before its forecasts
/// are trusted over the live counter (cold start falls back to
/// reactive FACS).
const WARMUP_SAMPLES: u64 = 4;

/// FACS with a per-cell, per-class load forecaster in the loop.
///
/// **New calls** are gated at the forecast occupancy — the sum of the
/// three per-class forecasts at the handoff-interarrival horizon —
/// because a new call is an investment over its whole holding time:
/// admitting it on a rising cell spends exactly the headroom the next
/// handoff will need. **Handoffs** are gated at the live counter: the
/// call already exists and needs capacity *now*, so denying it on a
/// pessimistic forecast would manufacture drops. The asymmetry is what
/// converts forecast skill into a lower drop probability at comparable
/// new-call blocking.
///
/// Until the forecasters warm up (`WARMUP_SAMPLES` epoch samples) or
/// when the runtime never pulses `observe` (the message-driven
/// `facs-distrib` actors), the controller degrades to plain reactive
/// FACS.
#[derive(Debug, Clone)]
pub struct PredictiveFacsController<F> {
    inner: FacsController,
    label: &'static str,
    per_class: [F; 3],
    horizon: InterarrivalEstimator,
}

impl<F: LoadForecaster + Clone> PredictiveFacsController<F> {
    fn with_parts(
        config: FacsConfig,
        prototype: F,
        label: &'static str,
    ) -> Result<Self, FuzzyError> {
        Ok(Self {
            inner: FacsController::with_config(config)?,
            label,
            per_class: [prototype.clone(), prototype.clone(), prototype],
            horizon: InterarrivalEstimator::new(DEFAULT_HORIZON_S, HORIZON_MIN_EVENTS),
        })
    }

    /// The wrapped reactive FACS controller.
    #[must_use]
    pub fn inner(&self) -> &FacsController {
        &self.inner
    }

    /// The forecast horizon currently in use (seconds): the measured
    /// mean handoff interarrival, or the default during warm-up.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.horizon.mean_interarrival_s()
    }

    /// Total forecast occupancy (BU) at the current horizon — the value
    /// fed to FLC2 for a new call once warm.
    #[must_use]
    pub fn forecast_occupancy_bu(&self) -> f64 {
        let h = self.horizon.mean_interarrival_s();
        self.per_class.iter().map(|f| f.forecast(h)).sum()
    }

    fn warm(&self) -> bool {
        self.per_class.iter().all(|f| f.samples() >= WARMUP_SAMPLES)
    }

    /// Runs the cascade exactly as `decide` will, exposing the evidence.
    #[must_use]
    pub fn evaluate(&self, request: &CallRequest, cell: &CellSnapshot) -> FacsEvaluation {
        self.inner.evaluate(request, &self.gate_snapshot(request, cell))
    }

    /// The snapshot the cascade is consulted at: live for handoffs and
    /// cold starts, `max(live, forecast)` for new calls once warm.
    /// Taking the max keeps the predictive gate strictly no looser than
    /// the reactive one: a forecast that lags a ramp-down can never
    /// admit a call the live occupancy would have refused.
    fn gate_snapshot(&self, request: &CallRequest, cell: &CellSnapshot) -> CellSnapshot {
        if request.kind != CallKind::New || !self.warm() {
            return *cell;
        }
        let cap = f64::from(cell.capacity.get());
        let predicted = self.forecast_occupancy_bu().round().clamp(0.0, cap) as u32;
        let occ = predicted.max(cell.occupied.get());
        CellSnapshot { occupied: BandwidthUnits::new(occ), ..*cell }
    }
}

impl PredictiveFacsController<EwmaHoltForecaster> {
    /// Predictive FACS over the EWMA/Holt baseline forecaster.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn ewma(config: FacsConfig) -> Result<Self, FuzzyError> {
        Self::with_parts(config, EwmaHoltForecaster::default_profile(), "FACS-predict-ewma")
    }

    /// A cloneable per-cell factory sharing one compiled prototype — the
    /// predictive sibling of
    /// [`FacsController::factory`](crate::FacsController::factory).
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the prototype fails to build.
    pub fn ewma_factory(
        config: FacsConfig,
    ) -> Result<impl Fn() -> BoxedController + Send + Sync + Clone, FuzzyError> {
        let prototype = Self::ewma(config)?;
        Ok(move || Box::new(prototype.clone()) as BoxedController)
    }
}

impl PredictiveFacsController<RecurrentForecaster> {
    /// Predictive FACS over the online-trained recurrent forecaster.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn recurrent(config: FacsConfig) -> Result<Self, FuzzyError> {
        let scale = f64::from(config.capacity_bu.max(1));
        Self::with_parts(config, RecurrentForecaster::default_profile(scale), "FACS-predict-rnn")
    }

    /// A cloneable per-cell factory sharing one compiled prototype.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the prototype fails to build.
    pub fn recurrent_factory(
        config: FacsConfig,
    ) -> Result<impl Fn() -> BoxedController + Send + Sync + Clone, FuzzyError> {
        let prototype = Self::recurrent(config)?;
        Ok(move || Box::new(prototype.clone()) as BoxedController)
    }
}

impl<F: LoadForecaster + Clone + 'static> AdmissionController for PredictiveFacsController<F> {
    fn name(&self) -> &str {
        self.label
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        if request.kind == CallKind::Handoff {
            self.horizon.record_event();
        }
        // Saturation short-circuit, exactly like reactive FACS: a
        // request that cannot fit at nominal is denied whatever the
        // (live or forecast) cascade would say.
        if !cell.can_fit(request.profile.rb_cost_nominal) {
            return AdmissionPlan::Reject(Decision::reject(-1.0));
        }
        let snapshot = cell.snapshot();
        AdmissionPlan::gate(
            self.inner.evaluate(request, &self.gate_snapshot(request, &snapshot)).decision,
        )
    }

    fn fast_reject(&self, profile: &facs_cac::ServiceProfile, cell: &BandwidthLedger) -> bool {
        // Mobility-independent denial: nominal cost does not fit. Note
        // this leaves handoff counting to `decide`; fast-rejected
        // arrivals hit saturated cells where the horizon estimate
        // matters least.
        !cell.can_fit(profile.rb_cost_nominal)
    }

    fn observe(&mut self, now_s: f64, cell: &BandwidthLedger) {
        self.horizon.advance(now_s);
        let mut by_class = [0u32; 3];
        for (_, alloc) in cell.iter() {
            by_class[class_index(alloc.profile.class)] += alloc.allocated.get();
        }
        for (i, forecaster) in self.per_class.iter_mut().enumerate() {
            forecaster.observe(now_s, f64::from(by_class[i]));
        }
    }
}

/// Tuner window length, in epoch samples.
const TUNER_WINDOW_EPOCHS: u32 = 10;
/// Bounded per-window step applied to the accept-rule weight scale.
const TUNER_STEP: f64 = 0.05;
/// Clamp bounds of the accept-rule weight scale.
const TUNER_MIN_SCALE: f64 = 0.5;
const TUNER_MAX_SCALE: f64 = 1.0;
/// Minimum decisions a window must contain before its drop/block rates
/// are trusted as a learning signal.
const TUNER_MIN_DECISIONS: u64 = 12;
/// Relative QoS cost of a dropped handoff vs a blocked new call — the
/// classical CAC asymmetry (users tolerate blocking far better than
/// mid-call drops; the paper defers handoff priority to future work,
/// this controller learns it).
const TUNER_DROP_PENALTY: f64 = 10.0;

/// Drop/block outcome counters over one tuner window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct OutcomeWindow {
    new_offered: u64,
    new_blocked: u64,
    handoff_attempts: u64,
    handoff_dropped: u64,
}

impl OutcomeWindow {
    fn record(&mut self, kind: CallKind, admitted: bool) {
        match kind {
            CallKind::New => {
                self.new_offered += 1;
                if !admitted {
                    self.new_blocked += 1;
                }
            }
            CallKind::Handoff => {
                self.handoff_attempts += 1;
                if !admitted {
                    self.handoff_dropped += 1;
                }
            }
        }
    }

    fn decisions(&self) -> u64 {
        self.new_offered + self.handoff_attempts
    }

    /// The weighted QoS cost `10 · P(drop) + P(block)` of the window.
    fn cost(&self) -> f64 {
        let p_block = if self.new_offered == 0 {
            0.0
        } else {
            self.new_blocked as f64 / self.new_offered as f64
        };
        let p_drop = if self.handoff_attempts == 0 {
            0.0
        } else {
            self.handoff_dropped as f64 / self.handoff_attempts as f64
        };
        TUNER_DROP_PENALTY * p_drop + p_block
    }
}

/// FACS with an online rule-weight tuner.
///
/// The controller starts at the paper's exact rule base (all consequent
/// weights 1.0) and adapts at epoch cadence: every
/// `TUNER_WINDOW_EPOCHS` `observe` pulses it measures the window's
/// drop/block outcome cost `10 · P(drop) + P(block)` and hill-climbs a
/// single *accept-rule weight scale* `g ∈ [0.5, 1.0]` applied to every
/// FRB2 rule whose consequent is `A` or `WA` — down-weighting accept
/// rules makes the cascade stricter, holding occupancy lower and
/// trading a little new-call blocking for fewer mid-call drops. The
/// climb is a ±`TUNER_STEP` coordinate search that reverses direction
/// whenever the measured cost worsens, so the scale tracks the load: a
/// congested rush hour drives it toward strict, a quiet cell lets it
/// relax back to the paper's table.
///
/// Updates are bounded (one step per window), weights clamped, and the
/// full 27-entry weight vector is exportable as JSON
/// ([`TunedFacsController::weights_json`]) for reproducibility.
///
/// Every weight change rebuilds the small FRB2 engine on the **exact**
/// backend (see [`Flc2::with_weights`]); FLC1 — untouched by tuning —
/// honors the configured backend, so a "compiled" tuned controller
/// still amortizes the expensive surface where it legally can.
#[derive(Debug, Clone)]
pub struct TunedFacsController {
    flc1: Flc1,
    flc2: Flc2,
    config: FacsConfig,
    weights: [f64; 27],
    accept_scale: f64,
    direction: f64,
    prev_cost: Option<f64>,
    epochs_in_window: u32,
    window: OutcomeWindow,
    weight_updates: u64,
}

impl TunedFacsController {
    /// Builds the tuned controller with the default (paper-faithful)
    /// starting configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn new() -> Result<Self, FuzzyError> {
        Self::with_config(FacsConfig::default())
    }

    /// Builds the tuned controller over a custom FACS configuration.
    /// The `backend` choice applies to FLC1 only; the tunable FLC2
    /// always runs exact inference (see [`Flc2::with_weights`]).
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the FLCs fail to compile.
    pub fn with_config(config: FacsConfig) -> Result<Self, FuzzyError> {
        let weights = [1.0; 27];
        Ok(Self {
            flc1: Flc1::with_backend(config.inference, config.backend)?,
            flc2: Flc2::with_weights(config.inference, &weights)?,
            config,
            weights,
            accept_scale: 1.0,
            direction: -1.0,
            prev_cost: None,
            epochs_in_window: 0,
            window: OutcomeWindow::default(),
            weight_updates: 0,
        })
    }

    /// A cloneable per-cell factory sharing one compiled prototype.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the prototype fails to build.
    pub fn factory(
        config: FacsConfig,
    ) -> Result<impl Fn() -> BoxedController + Send + Sync + Clone, FuzzyError> {
        let prototype = Self::with_config(config)?;
        Ok(move || Box::new(prototype.clone()) as BoxedController)
    }

    /// The current accept-rule weight scale `g ∈ [0.5, 1.0]`.
    #[must_use]
    pub fn accept_scale(&self) -> f64 {
        self.accept_scale
    }

    /// The current 27-entry rule-weight vector, in FRB2 table order.
    #[must_use]
    pub fn weights(&self) -> &[f64; 27] {
        &self.weights
    }

    /// Weight updates applied so far (engine rebuilds).
    #[must_use]
    pub fn weight_updates(&self) -> u64 {
        self.weight_updates
    }

    /// Exports the learned rule weights as a JSON document: one object
    /// per FRB2 rule with its antecedent terms, consequent and weight,
    /// plus the scalar tuner state — enough to reconstruct the tuned
    /// engine exactly.
    #[must_use]
    pub fn weights_json(&self) -> String {
        let mut out = String::from("{\n  \"controller\": \"FACS-tuned\",\n");
        out.push_str(&format!("  \"accept_scale\": {:.6},\n", self.accept_scale));
        out.push_str(&format!("  \"weight_updates\": {},\n", self.weight_updates));
        out.push_str("  \"rules\": [\n");
        for (i, (&(cv, r, cs, ar), weight)) in FRB2.iter().zip(&self.weights).enumerate() {
            out.push_str(&format!(
                "    {{ \"rule\": \"frb2-{i}\", \"if\": \"cv={cv} r={r} cs={cs}\", \
                 \"then\": \"ar={ar}\", \"weight\": {weight:.6} }}{}\n",
                if i + 1 == FRB2.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Runs the cascade with the current weights, exposing the evidence.
    #[must_use]
    pub fn evaluate(&self, request: &CallRequest, cell: &CellSnapshot) -> FacsEvaluation {
        evaluate_cascade(&self.flc1, &self.flc2, &self.config, request, cell)
    }

    /// Applies `scale` to every accept-leaning rule and rebuilds FLC2.
    fn apply_scale(&mut self, scale: f64) {
        self.accept_scale = scale;
        for (weight, &(_, _, _, ar)) in self.weights.iter_mut().zip(FRB2.iter()) {
            *weight = if ar == "a" || ar == "wa" { scale } else { 1.0 };
        }
        // Weights live in [TUNER_MIN_SCALE, 1.0] ⊂ [0, 1], so the
        // rebuild cannot fail; keep the previous engine if it ever did.
        if let Ok(flc2) = Flc2::with_weights(self.config.inference, &self.weights) {
            self.flc2 = flc2;
            self.weight_updates += 1;
        }
    }

    /// Closes one tuner window: measure the outcome cost, steer the
    /// hill-climb, take one bounded step.
    fn end_window(&mut self) {
        let window = std::mem::take(&mut self.window);
        if window.decisions() < TUNER_MIN_DECISIONS {
            // Too quiet to learn from — keep state, wait for traffic.
            return;
        }
        let cost = window.cost();
        if let Some(prev) = self.prev_cost {
            if cost > prev + 1e-9 {
                self.direction = -self.direction;
            }
        }
        self.prev_cost = Some(cost);
        let next = (self.accept_scale + self.direction * TUNER_STEP)
            .clamp(TUNER_MIN_SCALE, TUNER_MAX_SCALE);
        if (next - self.accept_scale).abs() > f64::EPSILON {
            self.apply_scale(next);
        } else {
            // Pinned at a clamp bound: probe back inward next window.
            self.direction = -self.direction;
        }
    }
}

impl AdmissionController for TunedFacsController {
    fn name(&self) -> &str {
        "FACS-tuned"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        // No `fast_reject` short-circuit: the tuner must see every
        // outcome, including saturation denials — those are exactly the
        // drops it is learning to prevent.
        if !cell.can_fit(request.profile.rb_cost_nominal) {
            self.window.record(request.kind, false);
            return AdmissionPlan::Reject(Decision::reject(-1.0));
        }
        let eval = self.evaluate(request, &cell.snapshot());
        self.window.record(request.kind, eval.decision.admits());
        AdmissionPlan::gate(eval.decision)
    }

    fn observe(&mut self, now_s: f64, cell: &BandwidthLedger) {
        let _ = (now_s, cell);
        self.epochs_in_window += 1;
        if self.epochs_in_window >= TUNER_WINDOW_EPOCHS {
            self.epochs_in_window = 0;
            self.end_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::{CallId, MobilityInfo, ServiceProfile};

    fn req(class: ServiceClass, kind: CallKind) -> CallRequest {
        CallRequest::new(CallId(1), class, kind, MobilityInfo::new(45.0, 20.0, 4.0))
    }

    /// A 40-BU ledger pre-loaded to `occupied` via one rigid filler call.
    fn ledger(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Voice, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    #[test]
    fn cold_start_matches_reactive_facs() {
        let mut predictive = PredictiveFacsController::ewma(FacsConfig::default()).unwrap();
        let mut plain = FacsController::new().unwrap();
        for occupied in [0, 10, 20, 30, 39] {
            let l = ledger(occupied);
            for kind in [CallKind::New, CallKind::Handoff] {
                for class in ServiceClass::ALL {
                    let r = req(class, kind);
                    assert_eq!(
                        predictive.decide(&r, &l).admits(),
                        plain.decide(&r, &l).admits(),
                        "{class} {kind:?} at {occupied}"
                    );
                }
            }
        }
    }

    #[test]
    fn rising_load_makes_new_calls_stricter_but_not_handoffs() {
        let mut predictive = PredictiveFacsController::ewma(FacsConfig::default()).unwrap();
        let plain = FacsController::new().unwrap();
        // Steep ramp: 4 -> 28 BU over six epochs. Holt extrapolates on
        // (level lags the ramp, but level + trend·h clears the live 20).
        for (i, occ) in [4u32, 9, 14, 19, 24, 28].iter().enumerate() {
            predictive.observe(i as f64 * 5.0, &ledger(*occ));
        }
        assert!(predictive.forecast_occupancy_bu() > 24.0, "trend must extrapolate upward");
        // Gate at live occupancy 20 (middle): plain FACS admits a good
        // voice call; the predictive gate sees the forecast instead.
        let l = ledger(20);
        let good = CallRequest::new(
            CallId(7),
            ServiceClass::Voice,
            CallKind::New,
            MobilityInfo::new(60.0, 0.0, 2.0),
        );
        let plain_eval = plain.evaluate(&good, &l.snapshot());
        let pred_eval = predictive.evaluate(&good, &l.snapshot());
        assert!(plain_eval.decision.admits());
        assert!(
            pred_eval.score < plain_eval.score,
            "forecast gate must be stricter on a rising cell: {} vs {}",
            pred_eval.score,
            plain_eval.score
        );
        // The same request as a handoff is scored at the live counter.
        let handoff = CallRequest::new(
            CallId(8),
            ServiceClass::Voice,
            CallKind::Handoff,
            MobilityInfo::new(60.0, 0.0, 2.0),
        );
        assert_eq!(
            predictive.evaluate(&handoff, &l.snapshot()).score,
            plain.evaluate(&handoff, &l.snapshot()).score,
            "handoffs are gated at live occupancy"
        );
    }

    #[test]
    fn horizon_tracks_mean_handoff_interarrival() {
        let mut p = PredictiveFacsController::recurrent(FacsConfig::default()).unwrap();
        assert_eq!(p.horizon_s(), DEFAULT_HORIZON_S);
        let l = ledger(0);
        // 10 handoffs over 50 seconds of epochs -> mean interarrival 5 s;
        // then another 40 s without handoffs stretches it to 9 s.
        for i in 0..10u64 {
            p.decide(&req(ServiceClass::Voice, CallKind::Handoff), &l);
            p.observe(i as f64 * 5.0, &l);
        }
        assert!((p.horizon_s() - 4.5).abs() < 1e-9, "{}", p.horizon_s());
        for i in 10..19u64 {
            p.observe(i as f64 * 5.0, &l);
        }
        assert!((p.horizon_s() - 9.0).abs() < 1e-9, "{}", p.horizon_s());
    }

    #[test]
    fn forecast_never_exceeds_capacity_at_the_gate() {
        let mut p = PredictiveFacsController::ewma(FacsConfig::default()).unwrap();
        for i in 0..8u64 {
            p.observe(i as f64 * 5.0, &ledger((5 * i as u32 + 5).min(40)));
        }
        let snapshot =
            p.gate_snapshot(&req(ServiceClass::Text, CallKind::New), &ledger(38).snapshot());
        assert!(snapshot.occupied.get() <= 40);
    }

    #[test]
    fn predictive_controllers_are_cell_local_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PredictiveFacsController<EwmaHoltForecaster>>();
        assert_send::<PredictiveFacsController<RecurrentForecaster>>();
        assert_send::<TunedFacsController>();
        let p = PredictiveFacsController::ewma(FacsConfig::default()).unwrap();
        assert!(p.is_cell_local());
        assert!(TunedFacsController::new().unwrap().is_cell_local());
    }

    #[test]
    fn tuned_starts_identical_to_static_facs() {
        let mut tuned = TunedFacsController::new().unwrap();
        let mut plain = FacsController::new().unwrap();
        for occupied in [0, 12, 20, 31, 39] {
            let l = ledger(occupied);
            for kind in [CallKind::New, CallKind::Handoff] {
                for class in ServiceClass::ALL {
                    let r = req(class, kind);
                    let a = plain.decide(&r, &l);
                    let b = tuned.decide(&r, &l);
                    assert_eq!(a.admits(), b.admits(), "{class} {kind:?} at {occupied}");
                }
            }
        }
        assert_eq!(tuned.accept_scale(), 1.0);
        assert_eq!(tuned.weight_updates(), 0);
    }

    /// Drives one full tuner window containing `drops` dropped handoffs
    /// (and enough clean traffic to clear the minimum-decisions bar).
    fn drive_window(tuned: &mut TunedFacsController, drops: usize) {
        let empty = ledger(0);
        let full = ledger(40);
        for _ in 0..drops {
            // A saturated cell: the handoff is dropped.
            tuned.decide(&req(ServiceClass::Voice, CallKind::Handoff), &full);
        }
        for _ in 0..(TUNER_MIN_DECISIONS as usize) {
            tuned.decide(&req(ServiceClass::Text, CallKind::New), &empty);
        }
        for e in 0..TUNER_WINDOW_EPOCHS {
            tuned.observe(f64::from(e) * 5.0, &empty);
        }
    }

    #[test]
    fn tuner_tightens_accept_rules_under_sustained_drops() {
        let mut tuned = TunedFacsController::new().unwrap();
        for _ in 0..4 {
            drive_window(&mut tuned, 6);
        }
        assert!(
            tuned.accept_scale() < 1.0,
            "sustained drops must pull the accept scale down, got {}",
            tuned.accept_scale()
        );
        assert!(tuned.weight_updates() >= 1);
        // Bounded, clamped weights.
        for (&w, &(_, _, _, ar)) in tuned.weights().iter().zip(FRB2.iter()) {
            if ar == "a" || ar == "wa" {
                assert!((TUNER_MIN_SCALE..=1.0).contains(&w), "weight {w}");
                assert_eq!(w, tuned.accept_scale());
            } else {
                assert_eq!(w, 1.0, "reject-leaning rules are never touched");
            }
        }
        // The tuned cascade is now stricter than the paper's table.
        let plain = FacsController::new().unwrap();
        let r = req(ServiceClass::Voice, CallKind::New);
        let mid = ledger(20).snapshot();
        assert!(tuned.evaluate(&r, &mid).score < plain.evaluate(&r, &mid).score);
    }

    #[test]
    fn tuner_never_leaves_its_clamp_bounds() {
        let mut tuned = TunedFacsController::new().unwrap();
        for _ in 0..40 {
            drive_window(&mut tuned, 8);
        }
        let g = tuned.accept_scale();
        assert!((TUNER_MIN_SCALE..=TUNER_MAX_SCALE).contains(&g), "scale {g}");
    }

    #[test]
    fn quiet_windows_do_not_move_the_tuner() {
        let mut tuned = TunedFacsController::new().unwrap();
        let empty = ledger(0);
        // A handful of decisions, below the minimum-decisions bar.
        for _ in 0..3 {
            tuned.decide(&req(ServiceClass::Text, CallKind::New), &empty);
        }
        for e in 0..(3 * TUNER_WINDOW_EPOCHS) {
            tuned.observe(f64::from(e) * 5.0, &empty);
        }
        assert_eq!(tuned.accept_scale(), 1.0);
        assert_eq!(tuned.weight_updates(), 0);
    }

    #[test]
    fn weights_json_is_complete_and_reconstructible() {
        let mut tuned = TunedFacsController::new().unwrap();
        drive_window(&mut tuned, 6);
        drive_window(&mut tuned, 6);
        let json = tuned.weights_json();
        assert!(json.contains("\"controller\": \"FACS-tuned\""));
        assert!(json.contains("\"accept_scale\""));
        for i in 0..27 {
            assert!(json.contains(&format!("\"rule\": \"frb2-{i}\"")), "rule {i} missing");
        }
        // The exported weights rebuild the same engine.
        let rebuilt =
            Flc2::with_weights(facs_fuzzy::InferenceConfig::default(), tuned.weights()).unwrap();
        let score_a =
            tuned.evaluate(&req(ServiceClass::Voice, CallKind::New), &ledger(20).snapshot()).score;
        let direct = rebuilt.decision_score(
            tuned
                .evaluate(&req(ServiceClass::Voice, CallKind::New), &ledger(20).snapshot())
                .correction_value,
            5.0,
            20.0,
        );
        assert!(direct.is_ok());
        let _ = score_a;
    }

    #[test]
    fn cloned_tuned_controllers_evolve_identically() {
        let mut a = TunedFacsController::new().unwrap();
        drive_window(&mut a, 5);
        let mut b = a.clone();
        drive_window(&mut a, 7);
        drive_window(&mut b, 7);
        assert_eq!(a.accept_scale(), b.accept_scale());
        assert_eq!(a.weights(), b.weights());
        let r = req(ServiceClass::Video, CallKind::New);
        let snap = ledger(22).snapshot();
        assert_eq!(a.evaluate(&r, &snap).score.to_bits(), b.evaluate(&r, &snap).score.to_bits());
    }
}
