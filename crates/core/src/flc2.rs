//! FLC2 — the admission-decision controller (paper §3.2).
//!
//! Inputs: the correction value **Cv** from FLC1 (terms Bad/Normal/Good),
//! the user **R**equest in BU (terms Text/Voice/Video) and the **C**ounter
//! **s**tate — occupied capacity in BU (terms Small/Middle/Full). Output:
//! the soft accept/reject score **A/R** in `[-1, 1]` over the five terms
//! {R, WR, NRNA, WA, A} (Fig. 6), driven by the 27-rule FRB2 (Table 2).

use std::sync::{Arc, OnceLock};

use facs_fuzzy::{
    BackendKind, CompiledSurface, Engine, FuzzyError, InferenceBackend, InferenceConfig,
    MembershipFunction, Rule, Variable,
};

use crate::tables::FRB2;

/// Universe of the Cv input.
pub const CV_UNIVERSE: (f64, f64) = (0.0, 1.0);
/// Universe of the request input, BU.
pub const REQUEST_UNIVERSE: (f64, f64) = (0.0, 10.0);
/// Universe of the counter-state input, BU (the paper's 40-BU cell).
pub const COUNTER_UNIVERSE: (f64, f64) = (0.0, 40.0);
/// Universe of the decision output.
pub const DECISION_UNIVERSE: (f64, f64) = (-1.0, 1.0);

fn cv_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("cv", CV_UNIVERSE.0, CV_UNIVERSE.1)
        .term("b", MembershipFunction::triangular(0.0, 0.0, 0.5)?)
        .term("n", MembershipFunction::triangular(0.5, 0.5, 0.5)?)
        .term("g", MembershipFunction::triangular(1.0, 0.5, 0.0)?)
        .build()
}

fn request_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("r", REQUEST_UNIVERSE.0, REQUEST_UNIVERSE.1)
        .term("t", MembershipFunction::triangular(0.0, 0.0, 5.0)?)
        .term("vo", MembershipFunction::triangular(5.0, 5.0, 5.0)?)
        .term("vi", MembershipFunction::triangular(10.0, 5.0, 0.0)?)
        .build()
}

fn counter_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("cs", COUNTER_UNIVERSE.0, COUNTER_UNIVERSE.1)
        .term("s", MembershipFunction::triangular(0.0, 0.0, 20.0)?)
        .term("m", MembershipFunction::triangular(20.0, 20.0, 20.0)?)
        .term("f", MembershipFunction::triangular(40.0, 20.0, 0.0)?)
        .build()
}

fn decision_variable() -> Result<Variable, FuzzyError> {
    Variable::builder("ar", DECISION_UNIVERSE.0, DECISION_UNIVERSE.1)
        .term("r", MembershipFunction::trapezoidal(-2.0, -1.0, 0.0, 0.5)?)
        .term("wr", MembershipFunction::triangular(-0.5, 0.5, 0.5)?)
        .term("nrna", MembershipFunction::triangular(0.0, 0.5, 0.5)?)
        .term("wa", MembershipFunction::triangular(0.5, 0.5, 0.5)?)
        .term("a", MembershipFunction::trapezoidal(1.0, 2.0, 0.5, 0.0)?)
        .build()
}

/// Assembles the FRB2 engine with the given per-rule weights (1.0
/// everywhere reproduces the paper's table exactly).
fn build_engine(config: InferenceConfig, weights: &[f64; 27]) -> Result<Engine, FuzzyError> {
    let rules: Result<Vec<Rule>, FuzzyError> = FRB2
        .iter()
        .zip(weights)
        .enumerate()
        .map(|(i, (&(cv, r, cs, ar), &weight))| {
            Rule::when("cv", cv)
                .and("r", r)
                .and("cs", cs)
                .then("ar", ar)
                .weight(weight)
                .label(format!("frb2-{i}"))
                .build()
        })
        .collect();
    Engine::builder()
        .input(cv_variable()?)
        .input(request_variable()?)
        .input(counter_variable()?)
        .output(decision_variable()?)
        .rules(rules?)
        .config(config)
        .build()
}

/// The compiled FLC2.
///
/// # Examples
///
/// ```
/// use facs::Flc2;
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let flc2 = Flc2::new()?;
/// // Good correction, text request, empty cell: strong accept.
/// let yes = flc2.decision_score(0.95, 1.0, 2.0)?;
/// // Good correction but a video request into a full cell: reject.
/// let no = flc2.decision_score(0.95, 10.0, 39.0)?;
/// assert!(yes > 0.5);
/// assert!(no < -0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flc2 {
    // Arc-shared for the same reason as [`Flc1`]: immutable after
    // construction, so per-cell clones share one rule base.
    engine: Arc<Engine>,
    surface: Option<CompiledSurface>,
}

impl Flc2 {
    /// Builds FLC2 with the paper's default inference configuration on
    /// the exact backend.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if construction fails.
    pub fn new() -> Result<Self, FuzzyError> {
        Self::with_config(InferenceConfig::default())
    }

    /// Builds FLC2 with a custom inference configuration on the exact
    /// backend.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] on invalid configuration.
    pub fn with_config(config: InferenceConfig) -> Result<Self, FuzzyError> {
        Self::with_backend(config, BackendKind::Exact)
    }

    /// Builds FLC2 with an explicit inference backend (see
    /// [`Flc1::with_backend`](crate::Flc1::with_backend) — the same
    /// compile-once / cached-default-surface rules apply).
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] on invalid configuration or lattice
    /// resolution.
    pub fn with_backend(config: InferenceConfig, backend: BackendKind) -> Result<Self, FuzzyError> {
        let engine = build_engine(config, &[1.0; 27])?;
        let surface = match backend {
            BackendKind::Exact => None,
            BackendKind::Compiled { points_per_axis } => {
                static DEFAULT_SURFACE: OnceLock<CompiledSurface> = OnceLock::new();
                Some(crate::surface_cache::default_cached_surface(
                    &DEFAULT_SURFACE,
                    &engine,
                    config,
                    points_per_axis,
                )?)
            }
        };
        Ok(Self { engine: Arc::new(engine), surface })
    }

    /// Builds FLC2 with per-rule consequent weights (one per FRB2 row,
    /// in table order, each in `[0, 1]`), always on the **exact**
    /// backend: the process-wide cached surface is compiled from the
    /// default (unit-weight) rule base and would silently serve stale
    /// scores for any other weighting, and recompiling a 33³ lattice per
    /// online weight update is orders of magnitude too slow. The online
    /// rule-weight tuner rebuilds this small engine instead.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] on invalid configuration or weights
    /// outside `[0, 1]`.
    pub fn with_weights(config: InferenceConfig, weights: &[f64; 27]) -> Result<Self, FuzzyError> {
        let engine = build_engine(config, weights)?;
        Ok(Self { engine: Arc::new(engine), surface: None })
    }

    /// The active backend selector.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        match &self.surface {
            None => BackendKind::Exact,
            Some(s) => BackendKind::Compiled { points_per_axis: s.points_per_axis() },
        }
    }

    /// The compiled decision surface, when the compiled backend is
    /// active.
    #[must_use]
    pub fn surface(&self) -> Option<&CompiledSurface> {
        self.surface.as_ref()
    }

    /// Computes the soft decision score in `[-1, 1]`.
    ///
    /// * `cv` — FLC1's correction value (clamped to `[0, 1]`);
    /// * `request_bu` — requested bandwidth in BU (1/5/10 for
    ///   text/voice/video);
    /// * `counter_bu` — occupied bandwidth in BU over the 0–40 universe
    ///   (callers with a different capacity scale first).
    ///
    /// # Errors
    ///
    /// [`FuzzyError::NonFiniteInput`] on NaN/infinite inputs.
    pub fn decision_score(
        &self,
        cv: f64,
        request_bu: f64,
        counter_bu: f64,
    ) -> Result<f64, FuzzyError> {
        let readings = [cv, request_bu, counter_bu];
        match &self.surface {
            None => self.engine.evaluate_crisp(&readings),
            Some(surface) => surface.evaluate_crisp(&readings),
        }
    }

    /// The underlying fuzzy engine, exposed for inspection. With the
    /// compiled backend this is the engine the surface was compiled from.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flc2() -> Flc2 {
        Flc2::new().expect("FLC2 builds")
    }

    fn score(cv: f64, r: f64, cs: f64) -> f64 {
        flc2().decision_score(cv, r, cs).expect("inference succeeds")
    }

    #[test]
    fn rule_count_matches_table_2() {
        assert_eq!(flc2().engine().rule_base().len(), 27);
    }

    #[test]
    fn compiled_backend_tracks_exact_closely() {
        let exact = flc2();
        let compiled =
            Flc2::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap();
        assert!(compiled.backend().is_compiled());
        let mut worst = 0.0f64;
        for cv in [0.0, 0.13, 0.4, 0.62, 0.88, 1.0] {
            for r in [0.0, 1.0, 3.7, 5.0, 8.2, 10.0] {
                for cs in [0.0, 6.0, 17.5, 25.0, 33.0, 40.0] {
                    let e = exact.decision_score(cv, r, cs).unwrap();
                    let c = compiled.decision_score(cv, r, cs).unwrap();
                    worst = worst.max((e - c).abs());
                }
            }
        }
        // Dense sweeps measure a global worst case of ≈ 0.064
        // (EXPERIMENTS.md).
        assert!(worst < 0.08, "compiled FLC2 diverged by {worst}");
    }

    #[test]
    fn empty_cell_accepts_everything() {
        // Every Cs=S row of FRB2 is A or WA: at zero occupancy everyone
        // gets in.
        for cv in [0.05, 0.5, 0.95] {
            for r in [1.0, 5.0, 10.0] {
                assert!(score(cv, r, 0.0) > 0.3, "cv={cv} r={r}: {}", score(cv, r, 0.0));
            }
        }
    }

    #[test]
    fn full_cell_never_accepts() {
        // Every Cs=F row is NRNA, WR or R: scores at/below zero.
        for cv in [0.05, 0.5, 0.95] {
            for r in [1.0, 5.0, 10.0] {
                assert!(score(cv, r, 40.0) <= 0.05, "cv={cv} r={r}: {}", score(cv, r, 40.0));
            }
        }
    }

    #[test]
    fn good_cv_unlocks_middle_occupancy() {
        // At Cs=20 (pure Middle): G -> A (positive), B/N -> NRNA (≈ 0).
        for r in [1.0, 5.0, 10.0] {
            assert!(score(0.98, r, 20.0) > 0.4, "good cv should pass at middle occupancy");
            let b = score(0.02, r, 20.0);
            assert!(b.abs() < 0.15, "bad cv at middle should be near-neutral, got {b}");
        }
    }

    #[test]
    fn video_into_full_cell_with_good_cv_is_firm_reject() {
        // G Vi F -> R: the strongest rejection in the table.
        let v = score(0.98, 10.0, 39.5);
        assert!(v < -0.5, "{v}");
    }

    #[test]
    fn score_monotone_decreasing_in_occupancy() {
        for cv in [0.1, 0.5, 0.9] {
            for r in [1.0, 5.0, 10.0] {
                let mut prev = f64::INFINITY;
                for cs in [0.0, 10.0, 20.0, 30.0, 40.0] {
                    let v = score(cv, r, cs);
                    assert!(
                        v <= prev + 0.15,
                        "score rose with occupancy: cv={cv} r={r} cs={cs}: {v} > {prev}"
                    );
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn output_always_in_decision_universe() {
        for cv in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for r in [0.0, 1.0, 5.0, 10.0] {
                for cs in [0.0, 10.0, 20.0, 30.0, 40.0] {
                    let v = score(cv, r, cs);
                    assert!((-1.0..=1.0).contains(&v), "score({cv},{r},{cs}) = {v}");
                }
            }
        }
    }

    #[test]
    fn text_is_favored_over_video_under_load() {
        // At full occupancy with bad cv: T -> NRNA but Vi -> WR.
        let text = score(0.1, 1.0, 38.0);
        let video = score(0.1, 10.0, 38.0);
        assert!(text > video, "text {text} should beat video {video} under load");
    }

    #[test]
    fn inputs_clamped() {
        assert_eq!(score(2.0, 1.0, 10.0), score(1.0, 1.0, 10.0));
        assert_eq!(score(0.5, 1.0, 100.0), score(0.5, 1.0, 40.0));
    }

    #[test]
    fn unit_weights_reproduce_the_default_engine_bit_for_bit() {
        let default = flc2();
        let weighted = Flc2::with_weights(InferenceConfig::default(), &[1.0; 27]).unwrap();
        assert!(!weighted.backend().is_compiled(), "weighted engines stay exact");
        for cv in [0.0, 0.33, 0.7, 1.0] {
            for r in [1.0, 5.0, 10.0] {
                for cs in [0.0, 13.0, 27.5, 40.0] {
                    let a = default.decision_score(cv, r, cs).unwrap();
                    let b = weighted.decision_score(cv, r, cs).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "cv={cv} r={r} cs={cs}");
                }
            }
        }
    }

    #[test]
    fn downweighting_accept_rules_lowers_scores() {
        // Halve every rule whose consequent is A or WA: the surface must
        // lean toward rejection everywhere it previously leaned accept.
        let mut weights = [1.0; 27];
        for (i, &(_, _, _, ar)) in FRB2.iter().enumerate() {
            if ar == "a" || ar == "wa" {
                weights[i] = 0.5;
            }
        }
        let strict = Flc2::with_weights(InferenceConfig::default(), &weights).unwrap();
        let default = flc2();
        let mut lowered = 0;
        for cv in [0.1, 0.5, 0.9] {
            for r in [1.0, 5.0, 10.0] {
                for cs in [2.0, 12.0, 22.0] {
                    let base = default.decision_score(cv, r, cs).unwrap();
                    let tuned = strict.decision_score(cv, r, cs).unwrap();
                    assert!(tuned <= base + 1e-9, "cv={cv} r={r} cs={cs}: {tuned} > {base}");
                    if tuned < base - 1e-6 {
                        lowered += 1;
                    }
                }
            }
        }
        assert!(lowered > 5, "halving accept weights must actually move scores");
    }

    #[test]
    fn out_of_range_weights_are_rejected() {
        let mut weights = [1.0; 27];
        weights[3] = 1.4;
        assert!(Flc2::with_weights(InferenceConfig::default(), &weights).is_err());
    }

    #[test]
    fn full_input_grid_is_covered() {
        let flc = flc2();
        for cv in 0..=10 {
            for r in 0..=10 {
                for cs in 0..=40 {
                    let result =
                        flc.decision_score(f64::from(cv) / 10.0, f64::from(r), f64::from(cs));
                    assert!(result.is_ok(), "hole at cv={cv} r={r} cs={cs}");
                }
            }
        }
    }
}
