//! Property-based tests over the FACS cascade invariants.

use facs::{FacsConfig, FacsController, Flc1, Flc2};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = ServiceClass> {
    prop::sample::select(vec![ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video])
}

fn snapshot(occupied: u32) -> CellSnapshot {
    CellSnapshot {
        capacity: BandwidthUnits::new(40),
        occupied: BandwidthUnits::new(occupied.min(40)),
        real_time_calls: 0,
        non_real_time_calls: 0,
    }
}

proptest! {
    /// FLC1's correction value is always inside [0, 1] for any observation
    /// — including out-of-universe readings (clamped).
    #[test]
    fn cv_in_unit_interval(
        speed in -50.0_f64..300.0,
        angle in -720.0_f64..720.0,
        distance in -5.0_f64..50.0,
    ) {
        let flc1 = Flc1::new().unwrap();
        let cv = flc1
            .correction_value(&MobilityInfo::new(speed, angle, distance))
            .unwrap();
        prop_assert!((0.0..=1.0).contains(&cv), "cv = {cv}");
    }

    /// FLC2's score is always inside [-1, 1].
    #[test]
    fn score_in_decision_interval(
        cv in -0.5_f64..1.5,
        request in 0.0_f64..12.0,
        counter in -5.0_f64..50.0,
    ) {
        let flc2 = Flc2::new().unwrap();
        let score = flc2.decision_score(cv, request, counter).unwrap();
        prop_assert!((-1.0..=1.0).contains(&score), "score = {score}");
    }

    /// The binary gate is consistent with the soft score: admitted iff
    /// `score > threshold`.
    #[test]
    fn gate_matches_score(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        occupied in 0u32..=40,
        class in arb_class(),
        threshold_cents in -50i32..=50,
    ) {
        let threshold = f64::from(threshold_cents) / 100.0;
        let facs = FacsController::with_config(FacsConfig {
            threshold,
            ..FacsConfig::default()
        })
        .unwrap();
        let request = CallRequest::new(
            CallId(0),
            class,
            CallKind::New,
            MobilityInfo::new(speed, angle, distance),
        );
        let eval = facs.evaluate(&request, &snapshot(occupied));
        prop_assert_eq!(eval.decision.admits(), eval.score > threshold);
    }

    /// Decisions are pure: the same request against the same snapshot
    /// always produces the identical evaluation.
    #[test]
    fn decisions_are_pure(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        occupied in 0u32..=40,
        class in arb_class(),
    ) {
        let facs = FacsController::new().unwrap();
        let request = CallRequest::new(
            CallId(0),
            class,
            CallKind::New,
            MobilityInfo::new(speed, angle, distance),
        );
        let a = facs.evaluate(&request, &snapshot(occupied));
        let b = facs.evaluate(&request, &snapshot(occupied));
        prop_assert_eq!(a, b);
    }

    /// A fuller cell never makes the same request *more* welcome
    /// (weak monotonicity with a small tolerance for centroid wobble).
    #[test]
    fn occupancy_monotonicity(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        class in arb_class(),
        occ_lo in 0u32..=40,
        occ_hi in 0u32..=40,
    ) {
        prop_assume!(occ_lo < occ_hi);
        let facs = FacsController::new().unwrap();
        let request = CallRequest::new(
            CallId(0),
            class,
            CallKind::New,
            MobilityInfo::new(speed, angle, distance),
        );
        let lo = facs.evaluate(&request, &snapshot(occ_lo)).score;
        let hi = facs.evaluate(&request, &snapshot(occ_hi)).score;
        prop_assert!(hi <= lo + 0.15, "score rose with occupancy: {lo} -> {hi}");
    }

    /// The handoff bias only ever helps a handoff, never a new call.
    #[test]
    fn handoff_bias_is_directional(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        occupied in 0u32..=40,
        class in arb_class(),
        bias_cents in 0i32..=50,
    ) {
        let bias = f64::from(bias_cents) / 100.0;
        let facs = FacsController::with_config(FacsConfig {
            handoff_bias: bias,
            ..FacsConfig::default()
        })
        .unwrap();
        let mobility = MobilityInfo::new(speed, angle, distance);
        let new_call = CallRequest::new(CallId(0), class, CallKind::New, mobility);
        let handoff = CallRequest::new(CallId(0), class, CallKind::Handoff, mobility);
        let cell = snapshot(occupied);
        let s_new = facs.evaluate(&new_call, &cell).score;
        let s_handoff = facs.evaluate(&handoff, &cell).score;
        prop_assert!(s_handoff + 1e-9 >= s_new);
    }
}
