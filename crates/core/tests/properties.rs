//! Property-based tests over the FACS cascade invariants, including
//! exact-vs-compiled backend equivalence.

use std::sync::OnceLock;

use facs::{FacsConfig, FacsController, Flc1, Flc2};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};
use facs_fuzzy::{BackendKind, InferenceConfig};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = ServiceClass> {
    prop::sample::select(vec![ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video])
}

/// Compiled controllers are built once per process (surface compilation
/// is the expensive step) and shared across property cases.
fn compiled_flc1() -> &'static Flc1 {
    static FLC1: OnceLock<Flc1> = OnceLock::new();
    FLC1.get_or_init(|| {
        Flc1::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap()
    })
}

fn compiled_flc2() -> &'static Flc2 {
    static FLC2: OnceLock<Flc2> = OnceLock::new();
    FLC2.get_or_init(|| {
        Flc2::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap()
    })
}

fn exact_flc1() -> &'static Flc1 {
    static FLC1: OnceLock<Flc1> = OnceLock::new();
    FLC1.get_or_init(|| Flc1::new().unwrap())
}

fn exact_flc2() -> &'static Flc2 {
    static FLC2: OnceLock<Flc2> = OnceLock::new();
    FLC2.get_or_init(|| Flc2::new().unwrap())
}

/// Tolerances for compiled-vs-exact crisp outputs at the default
/// 33-point lattice, from the dense sweeps recorded in EXPERIMENTS.md:
/// worst measured |ΔCv| is 0.122 (a localized ridge near the Middle
/// speed term's peak), worst |Δscore| is 0.064 for FLC2 alone and 0.033
/// through the full cascade. The bounds add headroom for the random
/// off-grid points proptest explores.
const FLC1_TOLERANCE: f64 = 0.15;
const FLC2_TOLERANCE: f64 = 0.10;

fn snapshot(occupied: u32) -> CellSnapshot {
    CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(occupied.min(40)))
}

proptest! {
    /// FLC1's correction value is always inside [0, 1] for any observation
    /// — including out-of-universe readings (clamped).
    #[test]
    fn cv_in_unit_interval(
        speed in -50.0_f64..300.0,
        angle in -720.0_f64..720.0,
        distance in -5.0_f64..50.0,
    ) {
        let flc1 = Flc1::new().unwrap();
        let cv = flc1
            .correction_value(&MobilityInfo::new(speed, angle, distance))
            .unwrap();
        prop_assert!((0.0..=1.0).contains(&cv), "cv = {cv}");
    }

    /// FLC2's score is always inside [-1, 1].
    #[test]
    fn score_in_decision_interval(
        cv in -0.5_f64..1.5,
        request in 0.0_f64..12.0,
        counter in -5.0_f64..50.0,
    ) {
        let flc2 = Flc2::new().unwrap();
        let score = flc2.decision_score(cv, request, counter).unwrap();
        prop_assert!((-1.0..=1.0).contains(&score), "score = {score}");
    }

    /// The binary gate is consistent with the soft score: admitted iff
    /// `score > threshold`.
    #[test]
    fn gate_matches_score(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        occupied in 0u32..=40,
        class in arb_class(),
        threshold_cents in -50i32..=50,
    ) {
        let threshold = f64::from(threshold_cents) / 100.0;
        let facs = FacsController::with_config(FacsConfig {
            threshold,
            ..FacsConfig::default()
        })
        .unwrap();
        let request = CallRequest::new(
            CallId(0),
            class,
            CallKind::New,
            MobilityInfo::new(speed, angle, distance),
        );
        let eval = facs.evaluate(&request, &snapshot(occupied));
        prop_assert_eq!(eval.decision.admits(), eval.score > threshold);
    }

    /// Decisions are pure: the same request against the same snapshot
    /// always produces the identical evaluation.
    #[test]
    fn decisions_are_pure(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        occupied in 0u32..=40,
        class in arb_class(),
    ) {
        let facs = FacsController::new().unwrap();
        let request = CallRequest::new(
            CallId(0),
            class,
            CallKind::New,
            MobilityInfo::new(speed, angle, distance),
        );
        let a = facs.evaluate(&request, &snapshot(occupied));
        let b = facs.evaluate(&request, &snapshot(occupied));
        prop_assert_eq!(a, b);
    }

    /// A fuller cell never makes the same request *more* welcome
    /// (weak monotonicity with a small tolerance for centroid wobble).
    #[test]
    fn occupancy_monotonicity(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        class in arb_class(),
        occ_lo in 0u32..=40,
        occ_hi in 0u32..=40,
    ) {
        prop_assume!(occ_lo < occ_hi);
        let facs = FacsController::new().unwrap();
        let request = CallRequest::new(
            CallId(0),
            class,
            CallKind::New,
            MobilityInfo::new(speed, angle, distance),
        );
        let lo = facs.evaluate(&request, &snapshot(occ_lo)).score;
        let hi = facs.evaluate(&request, &snapshot(occ_hi)).score;
        prop_assert!(hi <= lo + 0.15, "score rose with occupancy: {lo} -> {hi}");
    }

    /// The handoff bias only ever helps a handoff, never a new call.
    #[test]
    fn handoff_bias_is_directional(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        distance in 0.0_f64..10.0,
        occupied in 0u32..=40,
        class in arb_class(),
        bias_cents in 0i32..=50,
    ) {
        let bias = f64::from(bias_cents) / 100.0;
        let facs = FacsController::with_config(FacsConfig {
            handoff_bias: bias,
            ..FacsConfig::default()
        })
        .unwrap();
        let mobility = MobilityInfo::new(speed, angle, distance);
        let new_call = CallRequest::new(CallId(0), class, CallKind::New, mobility);
        let handoff = CallRequest::new(CallId(0), class, CallKind::Handoff, mobility);
        let cell = snapshot(occupied);
        let s_new = facs.evaluate(&new_call, &cell).score;
        let s_handoff = facs.evaluate(&handoff, &cell).score;
        prop_assert!(s_handoff + 1e-9 >= s_new);
    }

    /// The compiled FLC1 surface tracks exact Mamdani inference within
    /// [`FLC1_TOLERANCE`] anywhere in (and beyond) the input universes.
    #[test]
    fn compiled_flc1_matches_exact(
        speed in -10.0_f64..150.0,
        angle in -200.0_f64..200.0,
        distance in -1.0_f64..12.0,
    ) {
        let m = MobilityInfo::new(speed, angle, distance);
        let exact = exact_flc1().correction_value(&m).unwrap();
        let compiled = compiled_flc1().correction_value(&m).unwrap();
        prop_assert!(
            (exact - compiled).abs() < FLC1_TOLERANCE,
            "cv diverged at ({speed}, {angle}, {distance}): {exact} vs {compiled}"
        );
    }

    /// The compiled FLC2 surface tracks exact inference within
    /// [`FLC2_TOLERANCE`].
    #[test]
    fn compiled_flc2_matches_exact(
        cv in -0.2_f64..1.2,
        request in 0.0_f64..12.0,
        counter in -2.0_f64..45.0,
    ) {
        let exact = exact_flc2().decision_score(cv, request, counter).unwrap();
        let compiled = compiled_flc2().decision_score(cv, request, counter).unwrap();
        prop_assert!(
            (exact - compiled).abs() < FLC2_TOLERANCE,
            "score diverged at ({cv}, {request}, {counter}): {exact} vs {compiled}"
        );
    }
}

/// Exact and compiled cascades make the same accept/reject decision on
/// ≥ 99 % of a dense grid over the figure 7–10 input space, and their
/// soft scores never drift past a small bound. (EXPERIMENTS.md records
/// the measured agreement at several lattice resolutions; the
/// `backend` experiment regenerates it.)
#[test]
fn backend_decision_agreement_on_dense_grid() {
    let exact = FacsController::new().unwrap();
    let compiled = FacsController::with_config(FacsConfig::compiled()).unwrap();
    let threshold = exact.config().threshold;
    const STEPS: usize = 7;
    let axis = |min: f64, max: f64, i: usize| min + (max - min) * i as f64 / (STEPS - 1) as f64;
    let mut points = 0u32;
    let mut agreeing = 0u32;
    let mut max_divergence = 0.0f64;
    for class in [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video] {
        for si in 0..STEPS {
            for ai in 0..STEPS {
                for di in 0..STEPS {
                    for oi in 0..STEPS {
                        let request = CallRequest::new(
                            CallId(0),
                            class,
                            CallKind::New,
                            MobilityInfo::new(
                                axis(0.0, 120.0, si),
                                axis(-180.0, 180.0, ai),
                                axis(0.0, 10.0, di),
                            ),
                        );
                        let cell = snapshot(axis(0.0, 40.0, oi).round() as u32);
                        let e = exact.evaluate(&request, &cell);
                        let c = compiled.evaluate(&request, &cell);
                        points += 1;
                        if (e.score > threshold) == (c.score > threshold) {
                            agreeing += 1;
                        }
                        max_divergence = max_divergence.max((e.score - c.score).abs());
                    }
                }
            }
        }
    }
    let agreement = 100.0 * f64::from(agreeing) / f64::from(points);
    assert!(agreement >= 99.0, "decision agreement {agreement:.3}% < 99% ({points} points)");
    // Dense 21-step sweeps measure 0.033 worst-case (EXPERIMENTS.md).
    assert!(max_divergence < 0.06, "score divergence {max_divergence} too large");
}
