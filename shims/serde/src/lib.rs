//! Offline stand-in for `serde`: the two marker traits plus the
//! derive-macro re-exports, mirroring how the real crate surfaces them
//! under the `derive` feature.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
