//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! multi-producer channels with cloneable, `Sync` senders, and scoped
//! threads for the parallel scenario sweeps.
//!
//! Channels are backed by `std::sync::mpsc`, whose `Sender` is `Sync`
//! since Rust 1.72, which is all the actor runtime needs. `bounded` maps
//! onto `mpsc::sync_channel`, so its backpressure semantics (block on
//! full buffer) are preserved. Scoped threads are backed by
//! `std::thread::scope` (stable since 1.63).

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API shape, backed by
    //! `std::thread::scope`.
    //!
    //! Divergences from the real crate (acceptable for this workspace):
    //! the closure handed to [`Scope::spawn`] takes no `&Scope` argument
    //! (so spawned threads cannot themselves spawn into the scope), and a
    //! child panic propagates out of [`scope`] instead of being collected
    //! into the returned `Result` — the workspace treats worker panics as
    //! fatal either way.

    /// Result of joining a scoped thread, as returned by
    /// [`ScopedJoinHandle::join`].
    pub type Result<T> = std::thread::Result<T>;

    /// A handle for spawning threads that may borrow from the enclosing
    /// stack frame.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to this block; it is joined (at the
        /// latest) when [`scope`] returns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(f) }
        }
    }

    /// Owned permission to join a scoped thread and take its result.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result (`Err`
        /// holds the panic payload if it panicked).
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload when the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning borrowing threads; every spawned
    /// thread is joined before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this stand-in: a panicking child
    /// re-panics here (see the module docs). The `Result` return
    /// mirrors `crossbeam::thread::scope` so call sites are compatible
    /// with the real crate.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let mut results = vec![0u64; data.len()];
            super::scope(|s| {
                let mut handles = Vec::new();
                for &x in &data {
                    handles.push(s.spawn(move || x * 10));
                }
                for (slot, handle) in results.iter_mut().zip(handles) {
                    *slot = handle.join().expect("worker panicked");
                }
            })
            .expect("scope failed");
            assert_eq!(results, [10, 20, 30, 40]);
        }

        #[test]
        fn scope_returns_closure_value() {
            let sum = super::scope(|s| {
                let h = s.spawn(|| 40);
                h.join().unwrap() + 2
            })
            .unwrap();
            assert_eq!(sum, 42);
        }
    }
}

pub mod channel {
    //! MPSC channels with the `crossbeam_channel` API shape.

    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message like `crossbeam_channel::SendError`.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel. Cloneable and `Sync`, like
    /// `crossbeam_channel::Sender`.
    pub struct Sender<T>(SenderInner<T>);

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message back if the receiver has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderInner::Unbounded(tx) => Sender(SenderInner::Unbounded(tx.clone())),
                SenderInner::Bounded(tx) => Sender(SenderInner::Bounded(tx.clone())),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and every sender has
        /// disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel with unlimited buffering.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel that blocks senders once `cap` messages are
    /// queued.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderInner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_unbounded() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn bounded_round_trip_across_threads() {
            let (tx, rx) = bounded(1);
            let t = std::thread::spawn(move || {
                tx.send("hi").unwrap();
            });
            assert_eq!(rx.recv(), Ok("hi"));
            t.join().unwrap();
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_after_all_senders_dropped_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            let mut got = [rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }
    }
}
