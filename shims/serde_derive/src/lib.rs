//! No-op stand-ins for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to
//! keep them serialization-ready, but nothing serializes yet (there is
//! no `serde_json` here), so empty expansions are sufficient. The
//! `serde` helper attribute is declared so `#[serde(...)]` field/struct
//! attributes would not be rejected.

use proc_macro::TokenStream;

/// Derives nothing; accepts the same input as serde's `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts the same input as serde's `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
