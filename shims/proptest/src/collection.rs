//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies; built from a plain
/// length or a (half-open or inclusive) range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { min: len, max: len }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self { min: range.start, max: range.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self { min: *range.start(), max: *range.end() }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.index(span.max(1)).min(span - 1);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_requested_range() {
        let mut rng = TestRng::from_seed(1);
        let strategy = vec(0u32..5, 2..6);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = strategy.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
            lens.insert(v.len());
        }
        assert_eq!(lens.len(), 4, "all lengths 2..=5 seen: {lens:?}");
    }

    #[test]
    fn fixed_size_works() {
        let mut rng = TestRng::from_seed(2);
        let strategy = vec(0u32..5, 4usize);
        assert_eq!(strategy.new_value(&mut rng).len(), 4);
    }
}
