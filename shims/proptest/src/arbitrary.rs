//! The [`Arbitrary`] trait and [`any`], for types with a canonical
//! "whole domain" strategy.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types that can generate themselves from random bits.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn generate(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn generate(rng: &mut TestRng) -> Self {
        crate::num::f64::ANY.new_value(rng)
    }
}

impl Arbitrary for char {
    fn generate(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.one_in(8) {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{fffd}')
        } else {
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::generate(rng)
    }
}

/// Generates any value of `A`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = TestRng::from_seed(1);
        let strategy = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| strategy.new_value(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }

    #[test]
    fn char_is_valid() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..1_000 {
            let c = any::<char>().new_value(&mut rng);
            let _ = c.len_utf8();
        }
    }
}
