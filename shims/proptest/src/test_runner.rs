//! The minimal runner machinery behind the [`proptest!`](crate::proptest)
//! macro: a deterministic RNG and the case-level error type.

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count
    /// toward the run.
    Reject(String),
    /// A `prop_assert*!` failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Per-case result, as produced by the generated closure body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases to run per property: `PROPTEST_CASES` or 64.
#[must_use]
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A deterministic SplitMix64 generator seeding each property from its
/// own name, so runs are reproducible and properties are independent.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a raw value.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds from the property name (FNV-1a), optionally perturbed by
    /// `PROPTEST_SEED` for exploring different case sets.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
        let extra =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        Self::from_seed(hash ^ extra)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw: true once per `denominator` on average.
    pub fn one_in(&mut self, denominator: u64) -> bool {
        self.next_u64() % denominator == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_seeding_is_stable_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
