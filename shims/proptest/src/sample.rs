//! Sampling strategies over explicit value lists (`prop::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Picks uniformly from a fixed list of values.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select() needs at least one value");
    Select { values }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.values[rng.index(self.values.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_option_is_reachable() {
        let mut rng = TestRng::from_seed(1);
        let strategy = select(vec!['a', 'b', 'c']);
        let draws: Vec<char> = (0..100).map(|_| strategy.new_value(&mut rng)).collect();
        for c in ['a', 'b', 'c'] {
            assert!(draws.contains(&c), "{c} never drawn");
        }
    }
}
