//! Offline stand-in for `proptest`: random-input property testing with
//! the same front-end surface (the [`proptest!`]/[`prop_assert!`] macro
//! family, [`strategy::Strategy`] and its standard combinators) but a
//! much simpler back-end — cases are drawn from a deterministic per-test
//! seed and failing inputs are reported verbatim, **not shrunk**.
//!
//! The number of cases per property defaults to 64 and can be raised or
//! lowered via the `PROPTEST_CASES` environment variable, mirroring the
//! real crate's knob.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` module tree (`prop::collection::vec`, ...).
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each function's arguments are drawn from the
/// strategy after its `in` keyword, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __cases = $crate::test_runner::cases_from_env();
                let __strategies = ($($strat,)+);
                let mut __ran: u32 = 0;
                let mut __rejected: u32 = 0;
                while __ran < __cases {
                    if __rejected > __cases.saturating_mul(16) {
                        // Mirror the real crate: an over-constrained
                        // prop_assume is an error, not a vacuous pass.
                        panic!(
                            "proptest aborted: too many rejected cases \
                             ({} rejected, {} ran); prop_assume is over-constrained",
                            __rejected, __ran
                        );
                    }
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = __strategies;
                        ($($crate::strategy::Strategy::new_value($arg, &mut __rng),)+)
                    };
                    let __case = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __ran += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => __rejected += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest property failed after {} passing case(s): {}\n    \
                                 failing case (not shrunk): {}",
                                __ran, __msg, __case
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a formatted message unless `$cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
            stringify!($left), stringify!($right), __l, format!($($fmt)+)
        );
    }};
}

/// Discards the current case (without failing) unless `$cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
