//! Numeric strategies with class control (`prop::num::f64::ANY`, ...).

pub mod f64 {
    //! Strategies over `f64` values by floating-point class.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for any `f64`: finite values of every magnitude plus
    /// zeros, infinities, and (quiet) NaN.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyF64;

    /// Generates any `f64`, special values included.
    pub const ANY: AnyF64 = AnyF64;

    impl Strategy for AnyF64 {
        type Value = core::primitive::f64;

        fn new_value(&self, rng: &mut TestRng) -> core::primitive::f64 {
            match rng.next_u64() % 16 {
                0 => {
                    // Special values, each reachable.
                    match rng.next_u64() % 5 {
                        0 => core::primitive::f64::NAN,
                        1 => core::primitive::f64::INFINITY,
                        2 => core::primitive::f64::NEG_INFINITY,
                        3 => 0.0,
                        _ => -0.0,
                    }
                }
                // Uniform over bit patterns (wild exponents, subnormals),
                // with NaN payloads collapsed to the canonical quiet NaN.
                1 => {
                    let raw = core::primitive::f64::from_bits(rng.next_u64());
                    if raw.is_nan() {
                        core::primitive::f64::NAN
                    } else {
                        raw
                    }
                }
                _ => NORMAL.new_value(rng),
            }
        }
    }

    /// Strategy for normal (finite, non-zero, non-subnormal) `f64`s of
    /// either sign.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    /// Generates normal `f64`s.
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = core::primitive::f64;

        fn new_value(&self, rng: &mut TestRng) -> core::primitive::f64 {
            // sign * mantissa in [1, 2) * 2^exponent, exponent spread
            // wide enough to exercise magnitude-dependent code paths.
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let mantissa = 1.0 + rng.next_f64();
            let exponent = (rng.next_u64() % 601) as i32 - 300;
            let value = sign * mantissa * core::primitive::f64::powi(2.0, exponent);
            debug_assert!(value.is_normal());
            value
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_is_always_normal() {
            let mut rng = TestRng::from_seed(1);
            for _ in 0..10_000 {
                assert!(NORMAL.new_value(&mut rng).is_normal());
            }
        }

        #[test]
        fn any_reaches_special_values() {
            let mut rng = TestRng::from_seed(2);
            let draws: Vec<core::primitive::f64> =
                (0..5_000).map(|_| ANY.new_value(&mut rng)).collect();
            assert!(draws.iter().any(|v| v.is_nan()));
            assert!(draws.iter().any(|v| v.is_infinite()));
            assert!(draws.iter().any(|v| v.is_finite()));
        }
    }
}
