//! The [`Strategy`] trait, its combinators, and implementations for
//! primitive ranges and tuples.

use std::fmt::Debug;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike the real crate
/// there is no value tree / shrinking: a strategy simply draws a value.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Generates with `self`, then generates from the strategy `make`
    /// builds out of that value.
    fn prop_flat_map<O, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, make }
    }

    /// Retries generation until `accept` holds (up to an internal cap;
    /// panics if the filter rejects everything).
    fn prop_filter<F>(self, whence: &'static str, accept: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, accept }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn new_value(&self, rng: &mut TestRng) -> O::Value {
        (self.make)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    accept: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.source.new_value(rng);
            if (self.accept)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Generates a fixed value every time, like `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait DynStrategy<V>: Send + Sync {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy + Send + Sync> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Uniform choice between several strategies of one value type; the
/// target of [`prop_oneof!`](crate::prop_oneof).
#[derive(Debug, Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.index(self.options.len());
        self.options[pick].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Bias toward the endpoints now and then: boundary
                // values find off-by-one bugs that uniform draws miss.
                if rng.one_in(16) {
                    return if rng.one_in(2) { self.start } else { self.end - 1 };
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                if rng.one_in(16) {
                    return if rng.one_in(2) { start } else { end };
                }
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        if rng.one_in(16) {
            return self.start;
        }
        let draw = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against the half-open bound collapsing under rounding.
        if draw < self.end {
            draw
        } else {
            self.start
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        if rng.one_in(16) {
            return if rng.one_in(2) { start } else { end };
        }
        start + (end - start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..10_000 {
            let v = (3u32..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).new_value(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (2.0f64..3.0).new_value(&mut rng);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn endpoints_do_get_generated() {
        let mut rng = TestRng::from_seed(2);
        let values: Vec<u32> = (0..2_000).map(|_| (0u32..10).new_value(&mut rng)).collect();
        assert!(values.contains(&0));
        assert!(values.contains(&9));
    }

    #[test]
    fn map_filter_and_union_compose() {
        let mut rng = TestRng::from_seed(3);
        let even = (0u32..100).prop_map(|v| v * 2);
        let odd = (0u32..100).prop_map(|v| v * 2 + 1).boxed();
        let either = Union::new(vec![even.boxed(), odd]);
        let mut seen_even = false;
        let mut seen_odd = false;
        for _ in 0..200 {
            match either.new_value(&mut rng) % 2 {
                0 => seen_even = true,
                _ => seen_odd = true,
            }
        }
        assert!(seen_even && seen_odd);
        let only_big = (0u32..100).prop_filter("big", |v| *v >= 50);
        for _ in 0..100 {
            assert!(only_big.new_value(&mut rng) >= 50);
        }
    }

    #[test]
    fn tuples_and_just_generate() {
        let mut rng = TestRng::from_seed(4);
        let (a, b, c) = (0u32..10, 0.0f64..1.0, Just("x")).new_value(&mut rng);
        assert!(a < 10);
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, "x");
    }
}
