//! String strategies: `&str` regex patterns generate matching strings,
//! mirroring proptest's `impl Strategy for &str`.
//!
//! Supported pattern subset (enough for identifier-shaped generators):
//! literal characters, `[...]` classes with ranges, escaped literals,
//! and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded
//! quantifiers are capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("dangling escape in class"),
                        Some(ch) => ch,
                        None => panic!("unterminated [class] in pattern {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(']') | None => {
                                // Trailing '-' is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            }
                            Some(_) => {
                                let hi = chars.next().unwrap();
                                assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty [class] in pattern {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            '.' => Atom::Class(vec![(' ', '~')]),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} quantifier"),
                        n.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in pieces {
        let count = piece.min + rng.index(piece.max - piece.min + 1);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.index(ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    let pick = lo as u32 + (rng.next_u64() % u64::from(span)) as u32;
                    out.push(char::from_u32(pick).unwrap_or(lo));
                }
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        generate(&parse_pattern(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern_matches_shape() {
        let mut rng = TestRng::from_seed(1);
        let strategy = "[a-z][a-z0-9]{0,6}";
        for _ in 0..500 {
            let s = strategy.new_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn literals_escapes_and_quantifiers() {
        let mut rng = TestRng::from_seed(2);
        assert_eq!("abc".new_value(&mut rng), "abc");
        assert_eq!(r"a\[b".new_value(&mut rng), "a[b");
        let s = "x{3}".new_value(&mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let s = "a?b+".new_value(&mut rng);
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
            assert!(s.contains('b'));
        }
    }

    #[test]
    fn class_with_trailing_dash() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = "[a-]".new_value(&mut rng);
            assert!(s == "a" || s == "-", "{s:?}");
        }
    }
}
