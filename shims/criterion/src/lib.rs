//! Offline stand-in for `criterion` 0.5: enough API for the workspace's
//! `harness = false` benches to compile and produce useful timings.
//!
//! Each `bench_function` warms up briefly, then measures batches until
//! the configured measurement time elapses and reports the mean
//! nanoseconds per iteration to stderr. There is no statistical
//! analysis, outlier rejection, or HTML report.
//!
//! Like the real crate, passing `--test` after `--` (as in
//! `cargo bench --bench foo -- --test`) runs every routine once as a
//! smoke test instead of measuring it, so CI can gate on "the bench
//! still runs" without paying for a measurement.

use std::time::{Duration, Instant};

/// `true` when the process was invoked in test mode (`-- --test`), in
/// which case every benchmark routine runs once, unmeasured.
#[must_use]
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to every target function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before measuring.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark (or, in `--test` mode, runs its routine
    /// once without measuring).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_only = test_mode();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            test_only,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(_) if test_only => eprintln!("{id:<40} ok (test mode: 1 iteration)"),
            Some((iters, nanos)) => {
                let per_iter = nanos / iters.max(1) as f64;
                eprintln!("{id:<40} time: {} ({iters} iterations)", format_nanos(per_iter));
            }
            None => eprintln!("{id:<40} (no measurement: bencher was not driven)"),
        }
        self
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_only: bool,
    /// `(total_iterations, total_nanos)` once driven.
    report: Option<(u64, f64)>,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive through a
    /// black box so the optimizer cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_only {
            let start = Instant::now();
            black_box(routine());
            self.report = Some((1, start.elapsed().as_nanos() as f64));
            return;
        }
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Size each sample so the whole measurement fits the budget.
        let budget_nanos = self.measurement_time.as_nanos() as f64;
        let total_iters = (budget_nanos / per_iter.max(1.0)).ceil() as u64;
        let batch = (total_iters / self.sample_size as u64).clamp(1, 10_000_000);

        let mut iters: u64 = 0;
        let start = Instant::now();
        for _ in 0..self.sample_size {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed().as_nanos() as f64 > budget_nanos {
                break;
            }
        }
        self.report = Some((iters, start.elapsed().as_nanos() as f64));
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters) to
            // harness = false binaries; this stand-in runs everything.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| std::hint::black_box(2 + 2)));
        c.bench_function("side_effects_run", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn format_scales() {
        assert!(format_nanos(10.0).contains("ns"));
        assert!(format_nanos(10_000.0).contains("µs"));
        assert!(format_nanos(10_000_000.0).contains("ms"));
        assert!(format_nanos(10_000_000_000.0).contains("s/iter"));
    }
}
