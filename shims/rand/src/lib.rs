//! Offline stand-in for `rand` 0.8: the `Rng`/`SeedableRng` traits and a
//! deterministic `rngs::StdRng`.
//!
//! The generator core is SplitMix64 — statistically solid for simulation
//! workloads and trivially seedable — rather than the real crate's
//! ChaCha12, so streams differ from upstream for the same seed. Every
//! caller in this workspace only requires determinism per seed, which
//! holds.

/// The core randomness source: a full-period 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from uniform random bits (stand-in for sampling
/// with the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range a value can be uniformly drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the uniform ("standard")
    /// distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }
}
