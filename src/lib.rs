//! # facs-suite — reproduction of Barolli et al., "A Fuzzy-based Call
//! # Admission Control System for Wireless Cellular Networks" (ICDCSW 2007)
//!
//! This umbrella crate re-exports the workspace members so applications
//! can depend on one crate:
//!
//! * [`fuzzy`] (`facs-fuzzy`) — the Mamdani fuzzy-inference engine;
//! * [`cac`] (`facs-cac`) — CAC abstractions and classical baselines;
//! * [`cellsim`] (`facs-cellsim`) — the cellular-network simulator;
//! * [`core`] (`facs`) — FLC1, FLC2 and the FACS controller;
//! * [`scc`] (`facs-scc`) — the Shadow Cluster Concept baseline;
//! * [`distrib`] (`facs-distrib`) — the per-BS actor runtime.
//!
//! The runnable examples live in `examples/`; the experiment harness that
//! regenerates every figure of the paper is the `experiments` binary of
//! the `facs-bench` crate (see EXPERIMENTS.md).
//!
//! ## Quickstart
//!
//! ```
//! use facs_suite::cac::{
//!     AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
//!     MobilityInfo, ServiceClass,
//! };
//! use facs_suite::core::FacsController;
//!
//! # fn main() -> Result<(), facs_suite::fuzzy::FuzzyError> {
//! let mut facs = FacsController::new()?;
//! let cell = BandwidthLedger::new(BandwidthUnits::new(40));
//! let request = CallRequest::new(
//!     CallId(1),
//!     ServiceClass::Voice,
//!     CallKind::New,
//!     MobilityInfo::new(60.0, 10.0, 2.5),
//! );
//! assert!(facs.decide(&request, &cell).admits());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use facs_cac as cac;
pub use facs_cellsim as cellsim;
pub use facs_distrib as distrib;
pub use facs_fuzzy as fuzzy;
pub use facs_scc as scc;

/// The paper's core contribution (`facs` crate): FLC1, FLC2 and the FACS
/// controller.
pub mod core {
    pub use facs::*;
}
