//! Quickstart: build the FACS controller and decide on a few calls.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use facs_suite::cac::{
    BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest, MobilityInfo, ServiceClass,
};
use facs_suite::core::FacsController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A base station with the paper's 40 BU of capacity.
    let mut ledger = BandwidthLedger::new(BandwidthUnits::new(40));
    let facs = FacsController::new()?;

    // Three users with very different mobility patterns ask for service.
    let users = [
        ("commuter driving at the BS", ServiceClass::Voice, MobilityInfo::new(60.0, 5.0, 3.0)),
        ("pedestrian wandering far out", ServiceClass::Video, MobilityInfo::new(4.0, 140.0, 9.0)),
        ("stationary laptop", ServiceClass::Text, MobilityInfo::new(0.0, 0.0, 1.0)),
    ];

    for (i, (label, class, mobility)) in users.into_iter().enumerate() {
        let request = CallRequest::new(CallId(i as u64), class, CallKind::New, mobility);
        let evaluation = facs.evaluate(&request, &ledger.snapshot());
        println!(
            "{label:32} class={class:5} cv={:.3} -> {}",
            evaluation.correction_value, evaluation.decision
        );
        if evaluation.decision.admits() {
            ledger.allocate(request.id, request.profile)?;
        }
    }

    let counts = ledger.counts();
    println!(
        "\ncell state: {} / {} occupied, {} text / {} voice / {} video call(s)",
        ledger.occupied(),
        ledger.capacity(),
        counts.text,
        counts.voice,
        counts.video,
    );
    Ok(())
}
