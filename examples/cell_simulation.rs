//! Run a paper-style single-cell simulation (the Fig. 7 scenario at
//! 30 km/h) and print the acceptance curve.
//!
//! ```sh
//! cargo run --release --example cell_simulation
//! ```

use facs_suite::cac::BoxedController;
use facs_suite::cellsim::prelude::*;
use facs_suite::cellsim::HexGrid;
use facs_suite::core::FacsController;

fn main() {
    let facs_builder = |grid: &HexGrid| -> Vec<BoxedController> {
        grid.cell_ids()
            .map(|_| Box::new(FacsController::new().expect("FACS builds")) as BoxedController)
            .collect()
    };

    println!("Fig. 7 scenario, 30 km/h vehicles, paper traffic mix (60/30/10)");
    println!("requests | accepted % | mean utilization");
    println!("---------+------------+-----------------");
    for n in paper_request_counts() {
        let config = ScenarioConfig {
            requests: n,
            speed: SpeedSpec::Fixed(30.0),
            replications: 3,
            ..Default::default()
        };
        let metrics = config.aggregate(&facs_builder);
        println!(
            "{n:8} | {:10.1} | {:.3}",
            metrics.acceptance_percentage(),
            metrics.mean_utilization()
        );
    }
}
