//! Build a custom fuzzy controller with the `facs-fuzzy` engine and its
//! textual rule DSL — here, a handoff-urgency controller that decides how
//! aggressively a cell should prepare to hand a user over.
//!
//! ```sh
//! cargo run --example custom_fuzzy_controller
//! ```

use facs_suite::fuzzy::{parse_rules, Engine, MembershipFunction, Variable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Inputs: signal strength (dBm, -110..-50) and user speed (km/h).
    let signal = Variable::builder("signal", -110.0, -50.0)
        .term("weak", MembershipFunction::trapezoidal(-110.0, -95.0, 0.0, 15.0)?)
        .term("fair", MembershipFunction::triangular(-80.0, 15.0, 15.0)?)
        .term("strong", MembershipFunction::trapezoidal(-65.0, -50.0, 15.0, 0.0)?)
        .build()?;
    let speed = Variable::builder("speed", 0.0, 120.0)
        .term("slow", MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0)?)
        .term("fast", MembershipFunction::trapezoidal(60.0, 120.0, 45.0, 0.0)?)
        .build()?;
    // Output: handoff urgency in [0, 1].
    let urgency = Variable::builder("urgency", 0.0, 1.0).uniform_partition("u", 5).build()?;

    // Rules in the textual DSL (could equally live in a config file).
    let rules = parse_rules(
        "RULE panic:   IF signal IS weak   AND speed IS fast THEN urgency IS u5\n\
         RULE worried: IF signal IS weak   AND speed IS slow THEN urgency IS u4\n\
         RULE watch:   IF signal IS fair   AND speed IS fast THEN urgency IS u3\n\
         RULE calm:    IF signal IS fair   AND speed IS slow THEN urgency IS u2\n\
         RULE idle:    IF signal IS strong                   THEN urgency IS u1\n",
    )?;

    let engine =
        Engine::builder().input(signal).input(speed).output(urgency).rules(rules).build()?;

    println!("signal dBm | speed km/h | handoff urgency");
    println!("-----------+------------+----------------");
    for (dbm, kmh) in [(-100.0, 90.0), (-100.0, 5.0), (-80.0, 90.0), (-80.0, 5.0), (-55.0, 60.0)] {
        let outcome = engine.evaluate(&[("signal", dbm), ("speed", kmh)])?;
        let urgency = outcome.crisp("urgency").expect("urgency output exists");
        let (rule, strength) = outcome.dominant_rule().expect("a rule fired");
        println!(
            "{dbm:10.0} | {kmh:10.0} | {urgency:.3}  (dominant rule #{rule}, strength {strength:.2})"
        );
    }
    Ok(())
}
