//! Run admission control across a cluster of base-station actors, one OS
//! thread per BS, exchanging messages over channels — the deployment
//! shape the SCC paper sketches.
//!
//! ```sh
//! cargo run --example distributed_cluster
//! ```

use facs_suite::cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellId, MobilityInfo, ServiceClass,
};
use facs_suite::cellsim::{HexGrid, SimRng};
use facs_suite::core::FacsConfig;
use facs_suite::distrib::Cluster;
use facs_suite::scc::{SccConfig, SccNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = HexGrid::new(1, 10.0);

    // A FACS cluster on compiled decision surfaces: the lattice compiles
    // once and all seven actors share it — the production-serving shape.
    let facs_cluster = Cluster::spawn_facs(&grid, BandwidthUnits::new(40), FacsConfig::compiled())?;
    let probe = CallRequest::new(
        CallId(0),
        ServiceClass::Voice,
        CallKind::New,
        MobilityInfo::new(60.0, 0.0, 2.0),
    );
    let outcome = facs_cluster.request_admission(CellId(0), probe)?;
    println!(
        "FACS cluster (compiled surfaces): {} actors, probe call admitted = {}",
        facs_cluster.len(),
        outcome.admitted
    );
    facs_cluster.shutdown();

    let network = SccNetwork::new(SccConfig::default());
    let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), network.controllers(&grid));
    println!("spawned {} base-station actors", cluster.len());

    // Fire a burst of calls at random cells.
    let mut rng = SimRng::seed_from_u64(2007);
    let mut admitted = Vec::new();
    let mut denied = 0usize;
    for i in 0..120u64 {
        let cell = CellId(rng.index(grid.len()) as u32);
        let class = match rng.index(3) {
            0 => ServiceClass::Text,
            1 => ServiceClass::Voice,
            _ => ServiceClass::Video,
        };
        let mobility = MobilityInfo::new(
            rng.uniform_range(0.0, 120.0),
            rng.uniform_range(-180.0, 180.0),
            rng.uniform_range(0.0, 10.0),
        );
        let request = CallRequest::new(CallId(i), class, CallKind::New, mobility);
        let outcome = cluster.request_admission(cell, request)?;
        if outcome.admitted {
            admitted.push((cell, i));
        } else {
            denied += 1;
        }
    }
    println!("admitted {} calls, denied {denied}", admitted.len());

    // Show the shadow-cluster message traffic the admissions generated.
    println!(
        "shadow board: {} active projections, {} messages exchanged",
        network.board().active_calls(),
        network.board().message_count()
    );
    for cell in grid.cell_ids() {
        println!(
            "  {cell}: occupied {}, incoming shadow influence {:.2} BU",
            cluster.occupancy(cell)?,
            network.board().influence_on(cell)
        );
    }

    // Tear everything down.
    for (cell, id) in admitted {
        cluster.release(cell, CallId(id))?;
    }
    cluster.shutdown();
    println!("all calls released, cluster joined cleanly");
    Ok(())
}
