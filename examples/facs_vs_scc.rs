//! Head-to-head: FACS vs the Shadow Cluster Concept on an identical
//! 7-cell workload (the Fig. 10 comparison), including the QoS metrics
//! the paper's conclusion rests on.
//!
//! ```sh
//! cargo run --release --example facs_vs_scc
//! ```

use facs_suite::cac::BoxedController;
use facs_suite::cellsim::prelude::*;
use facs_suite::cellsim::HexGrid;
use facs_suite::core::FacsController;
use facs_suite::scc::{SccConfig, SccNetwork};

fn main() {
    let facs_builder = |grid: &HexGrid| -> Vec<BoxedController> {
        grid.cell_ids()
            .map(|_| Box::new(FacsController::new().expect("FACS builds")) as BoxedController)
            .collect()
    };
    let scc_builder = |grid: &HexGrid| SccNetwork::new(SccConfig::default()).controllers(grid);

    println!("7-cell cluster, walker mobility, paper traffic mix");
    println!("req/cell |  FACS acc% | SCC acc%  | FACS drop% | SCC drop%");
    println!("---------+------------+-----------+------------+----------");
    for n in [10usize, 30, 50, 70, 100] {
        let config = ScenarioConfig {
            requests: n * 7,
            grid_radius: 1,
            spawn: SpawnSpec::AnyCell,
            mobility: MobilityChoice::Walker,
            replications: 3,
            ..Default::default()
        };
        let facs = config.aggregate(&facs_builder);
        let scc = config.aggregate(&scc_builder);
        println!(
            "{n:8} | {:10.1} | {:9.1} | {:10.2} | {:9.2}",
            facs.acceptance_percentage(),
            scc.acceptance_percentage(),
            facs.dropping_percentage(),
            scc.dropping_percentage(),
        );
    }
    println!("\nFACS admits fewer calls under load but drops fewer ongoing calls —");
    println!("the QoS guarantee the paper's conclusion claims.");
}
